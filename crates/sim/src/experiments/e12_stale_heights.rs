//! **E12 — ablation**: the §3.2 remark that "we can reduce the amount of
//! control information exchange" — how much throughput does the
//! balancing algorithm lose when neighbors' buffer heights are refreshed
//! only every k steps?

use super::table::{f3, Table};
use adhoc_core::ThetaAlg;
use adhoc_geom::distributions::NodeDistribution;
use adhoc_routing::{ActiveEdge, BalancingConfig, StaleBalancingRouter};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Run E12 and return the table.
pub fn run(quick: bool) -> Table {
    let n = if quick { 60 } else { 120 };
    let steps = if quick { 2000 } else { 8000 };
    let periods: &[u64] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16, 64]
    };

    let mut table = Table::new(
        "E12 (ablation, §3.2 remark): stale-height balancing — control traffic vs throughput",
        &[
            "refresh period",
            "control msgs",
            "delivered",
            "throughput vs fresh",
            "conserved",
        ],
    );

    let mut rng = ChaCha8Rng::seed_from_u64(12_000);
    let points = NodeDistribution::unit_square()
        .sample(n, &mut rng)
        .expect("sampling");
    let range = adhoc_geom::default_max_range(n);
    let topo = ThetaAlg::new(PI / 3.0, range).build(&points);
    let edges: Vec<ActiveEdge> = topo
        .spatial
        .graph
        .edges()
        .map(|(u, v, w)| ActiveEdge::new(u, v, w * w))
        .collect();
    let cfg = BalancingConfig {
        threshold: 0.5,
        gamma: 0.1,
        capacity: 40,
    };

    let mut fresh_delivered = 0u64;
    for (i, &period) in periods.iter().enumerate() {
        let mut router = StaleBalancingRouter::new(n, &[0], cfg, period);
        for s in 0..steps {
            router.inject((1 + (s % (n - 1))) as u32, 0);
            router.step(&edges);
        }
        let m = router.metrics();
        if i == 0 {
            fresh_delivered = m.delivered.max(1);
        }
        table.push(vec![
            period.to_string(),
            router.control_messages.to_string(),
            m.delivered.to_string(),
            f3(m.delivered as f64 / fresh_delivered as f64),
            router.conserved().to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_graceful_degradation() {
        let t = run(true);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            assert_eq!(row[4], "true", "conservation violated: {row:?}");
        }
        // Control messages drop with the period...
        let msgs: Vec<u64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        assert!(msgs[0] > msgs[1] && msgs[1] > msgs[2]);
        // ...while throughput degrades by far less than the traffic
        // saving (period 16 keeps roughly a third of fresh throughput at
        // 1/16 of the control cost).
        let ratio: f64 = t.rows[2][3].parse().unwrap();
        assert!(ratio > 0.25, "stale throughput collapsed: {ratio}");
    }
}
