//! **E18 — baseline contrast**: greedy geographic forwarding (the
//! position-based protocol family of GPSR, §1.2) versus the balancing
//! algorithm on *void* topologies.
//!
//! Geographic greedy needs no buffers, no height exchange and no routing
//! state — but it commits to monotone geometric progress, so a concave
//! "void" (here a U-shaped deployment where the destination sits across
//! the gap) strands every packet at the local minimum. Backpressure
//! balancing knows nothing about geometry and flows around the void
//! without a single drop. This is why the paper's adversarial framework
//! never reasons about positions at the routing layer.

use super::table::{f2, Table};
use adhoc_geom::Point;
use adhoc_proximity::unit_disk_graph;
use adhoc_routing::{ActiveEdge, BalancingConfig, BalancingRouter, GeoGreedyRouter};

/// U-shaped deployment: two vertical arms of `arm` nodes, joined at the
/// bottom by a short bridge; spacing 0.8 (unit-range neighbors only).
/// Node 0 is the tip of the left arm (source side); the last node is the
/// tip of the right arm (destination). The straight line between them
/// crosses the void.
fn u_shape(arm: usize) -> Vec<Point> {
    let s = 0.8;
    let mut pts = Vec::new();
    // left arm, top to bottom
    for i in 0..arm {
        pts.push(Point::new(0.0, (arm - i) as f64 * s));
    }
    // bridge
    pts.push(Point::new(0.0, 0.0));
    pts.push(Point::new(s, 0.0));
    pts.push(Point::new(2.0 * s, 0.0));
    // right arm, bottom to top
    for i in 0..arm {
        pts.push(Point::new(2.0 * s, (i + 1) as f64 * s));
    }
    pts
}

/// Run E18 and return the table.
pub fn run(quick: bool) -> Table {
    let arms: &[usize] = if quick { &[4, 8] } else { &[4, 8, 16] };
    // Backpressure crosses the void by diffusion until the gradient
    // field forms, which takes Ω(path²) steps — budget accordingly.
    let steps = if quick { 3000 } else { 16_000 };

    let mut table = Table::new(
        "E18 (baseline contrast): greedy geographic forwarding vs (T,γ)-balancing across a void",
        &[
            "arm len",
            "n",
            "geo delivered",
            "geo void-drops",
            "balancing delivered",
            "balancing drops",
            "bal hops/delivery",
        ],
    );

    for &arm in arms {
        let points = u_shape(arm);
        let n = points.len();
        let dest = (n - 1) as u32;
        let sg = unit_disk_graph(&points, 1.0);
        let edges: Vec<ActiveEdge> = sg
            .graph
            .edges()
            .map(|(u, v, w)| ActiveEdge::new(u, v, w * w))
            .collect();

        // The backpressure staircase needs height ≈ path length (≈ 2·arm)
        // at the source before the first delivery; size buffers above it.
        let capacity = (4 * arm + 16) as u32;
        let mut geo = GeoGreedyRouter::new(&points, &[dest], capacity, 10);
        let mut bal = BalancingRouter::new(
            n,
            &[dest],
            BalancingConfig {
                threshold: 0.5,
                gamma: 0.0,
                capacity,
            },
        );
        for s in 0..steps {
            if s % 4 == 0 {
                geo.inject(0, dest);
                bal.inject(0, dest);
            }
            geo.step(&edges);
            bal.step(&edges);
        }
        let (mg, mb) = (geo.metrics(), bal.metrics());
        table.push(vec![
            arm.to_string(),
            n.to_string(),
            mg.delivered.to_string(),
            geo.stuck_drops.to_string(),
            mb.delivered.to_string(),
            mb.dropped.to_string(),
            f2(mb.avg_path_length().unwrap_or(0.0)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_balancing_crosses_the_void() {
        let t = run(true);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let geo_delivered: u64 = row[2].parse().unwrap();
            let void_drops: u64 = row[3].parse().unwrap();
            let bal_delivered: u64 = row[4].parse().unwrap();
            // Greedy geographic strands everything at the void…
            assert_eq!(geo_delivered, 0, "geo should not cross the void: {row:?}");
            assert!(void_drops > 0, "void drops expected: {row:?}");
            // …while balancing routes around it.
            assert!(bal_delivered > 100, "balancing failed the void: {row:?}");
        }
    }

    #[test]
    fn u_shape_is_connected_and_unit_range() {
        let points = u_shape(6);
        let sg = unit_disk_graph(&points, 1.0);
        assert!(adhoc_graph::is_connected(&sg.graph));
        // straight-line distance from source tip to dest tip is small,
        // but the graph path must go around: hop distance ≈ 2·arm + 2.
        let hops = adhoc_graph::bfs_hops(&sg.graph, 0);
        assert!(hops[points.len() - 1] as usize >= 2 * 6);
    }
}
