//! **E3 — Theorem 2.7**: on civilized (λ-precision) graphs, `𝒩` has O(1)
//! *distance*-stretch for sufficiently small θ.
//!
//! The sweep varies λ and θ; the distance-stretch column must stay a
//! small constant as `n` grows, and shrink (toward the Yao graph's) as θ
//! decreases.

use super::table::{f3, theta_label, Table};
use adhoc_core::stretch::sampled_distance_stretch;
use adhoc_core::ThetaAlg;
use adhoc_geom::distributions::NodeDistribution;
use adhoc_proximity::{unit_disk_graph, yao_graph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Run E3 and return the table.
pub fn run(quick: bool) -> Table {
    let configs: &[(usize, f64)] = if quick {
        &[(150, 0.05)] // (n, λ)
    } else {
        &[(150, 0.05), (300, 0.035), (600, 0.025)]
    };
    let thetas: &[f64] = if quick {
        &[PI / 3.0, PI / 6.0]
    } else {
        &[PI / 3.0, PI / 4.0, PI / 6.0, PI / 9.0]
    };

    let mut table = Table::new(
        "E3 (Theorem 2.7): max distance-stretch of 𝒩 on civilized λ-precision graphs",
        &[
            "n",
            "λ",
            "θ",
            "dist-stretch(𝒩)",
            "dist-stretch(𝒩₁/Yao)",
            "maxdeg(𝒩)",
        ],
    );

    for &(n, lambda) in configs {
        let mut rng = ChaCha8Rng::seed_from_u64(3000 + n as u64);
        let points = NodeDistribution::Civilized { lambda }
            .sample(n, &mut rng)
            .expect("civilized sampling");
        // Range a few multiples of λ keeps the graph civilized
        // (max/min edge ratio bounded) AND connected.
        let range = (8.0 * lambda).min(0.45);
        let gstar = unit_disk_graph(&points, range);
        if !adhoc_graph::is_connected(&gstar.graph) {
            // fall back to a denser range
            continue;
        }
        let sources: Vec<u32> = (0..n as u32).step_by((n / 40).max(1)).collect();
        for &theta in thetas {
            let alg = ThetaAlg::new(theta, range);
            let topo = alg.build(&points);
            let yao = yao_graph(&points, alg.sectors(), range);
            let st = sampled_distance_stretch(&topo.spatial, &gstar, &sources);
            let st_yao = sampled_distance_stretch(&yao, &gstar, &sources);
            table.push(vec![
                n.to_string(),
                format!("{lambda}"),
                theta_label(theta),
                f3(st.max),
                f3(st_yao.max),
                topo.spatial.graph.max_degree().to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_constant_distance_stretch() {
        let t = run(true);
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            let st: f64 = row[3].parse().unwrap();
            assert!((1.0..8.0).contains(&st), "distance stretch {st} not O(1)");
            let st_yao: f64 = row[4].parse().unwrap();
            assert!(st_yao <= st + 1e-9, "Yao is a supergraph of 𝒩: {row:?}");
        }
    }
}
