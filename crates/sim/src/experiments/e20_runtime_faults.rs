//! **E20 — locality under faults**: the paper's locality claims, replayed
//! over *unreliable* radios via the `adhoc-runtime` message-passing
//! runtime. Sweep the link loss rate and measure (a) whether the hardened
//! 3-round ΘALG protocol still reconstructs the exact `𝒩` of the direct
//! construction, (b) how many retransmissions that costs, and (c) the
//! routed throughput of distributed `(T,γ)`-balancing with height gossip
//! over the reconstructed topology — with its packet-conservation ledger
//! checked under the same faults.

use super::table::{f3, Table};
use adhoc_core::ThetaAlg;
use adhoc_geom::distributions::NodeDistribution;
use adhoc_routing::BalancingConfig;
use adhoc_runtime::{
    edge_fidelity, run_gossip_balancing, run_theta_protocol, uniform_workload, FaultConfig,
    GossipConfig, ThetaTiming,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Run E20 and return the table.
pub fn run(quick: bool) -> Table {
    let n = if quick { 40 } else { 120 };
    let steps = if quick { 300 } else { 2000 };
    let losses: &[f64] = &[0.0, 0.05, 0.1, 0.2];

    let mut table = Table::new(
        "E20 (runtime, §2.1+§3.2 under faults): ΘALG + (T,γ)-balancing over lossy links",
        &[
            "loss rate",
            "θ msgs sent",
            "θ msgs dropped",
            "fidelity",
            "exact 𝒩",
            "edge awareness",
            "routed delivery",
            "pkts link-lost",
            "conserved",
        ],
    );

    let mut rng = ChaCha8Rng::seed_from_u64(20_000);
    let points = NodeDistribution::unit_square()
        .sample(n, &mut rng)
        .expect("sampling");
    let range = adhoc_geom::default_max_range(n);
    let alg = ThetaAlg::new(PI / 3.0, range);
    let direct = alg.build(&points);

    for &loss in losses {
        let faults = FaultConfig::lossy(loss);
        let theta = run_theta_protocol(
            &points,
            alg.sectors(),
            range,
            ThetaTiming::default(),
            faults,
            4242,
        );
        let fidelity = edge_fidelity(&direct.spatial, &theta.graph);
        let exact = direct.spatial.graph == theta.graph.graph;

        // Route over what the protocol actually built, under the same
        // faults: packets to one sink, uniform sources.
        let dests = [0u32];
        let workload = uniform_workload(n, &dests, steps, 2, 99);
        let gossip = run_gossip_balancing(
            &theta.graph,
            &dests,
            GossipConfig::new(
                BalancingConfig {
                    threshold: 0.5,
                    gamma: 0.1,
                    capacity: 40,
                },
                steps,
            ),
            &workload,
            faults,
            4242,
        );

        table.push(vec![
            f3(loss),
            theta.stats.sent.to_string(),
            theta.stats.dropped.to_string(),
            f3(fidelity),
            exact.to_string(),
            f3(theta.edge_awareness),
            f3(gossip.delivery_rate()),
            gossip.link_lost.to_string(),
            gossip.conserved().to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_acceptance_criteria() {
        let t = run(true);
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let loss: f64 = row[0].parse().unwrap();
            let fidelity: f64 = row[3].parse().unwrap();
            let exact = &row[4] == "true";
            // Acceptance: exact reconstruction, or ≥ 99% fidelity at the
            // highest loss rate.
            assert!(
                exact || (loss >= 0.2 && fidelity >= 0.99),
                "loss {loss}: fidelity {fidelity}, exact {exact}"
            );
            assert_eq!(row[8], "true", "conservation violated: {row:?}");
        }
        // Lossless run drops nothing and routes perfectly losslessly.
        assert_eq!(t.rows[0][2], "0");
        assert_eq!(t.rows[0][7], "0");
        // Higher loss costs more retransmissions than the lossless run.
        let sent_0: u64 = t.rows[0][1].parse().unwrap();
        let sent_20: u64 = t.rows[3][1].parse().unwrap();
        assert!(sent_20 >= sent_0);
    }
}
