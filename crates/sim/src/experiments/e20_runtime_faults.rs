//! **E20 — locality under faults**: the paper's locality claims, replayed
//! over *unreliable* radios via the `adhoc-runtime` message-passing
//! runtime. Sweep the link loss rate and measure (a) whether the hardened
//! 3-round ΘALG protocol still reconstructs the exact `𝒩` of the direct
//! construction, and (b) the routed throughput of distributed
//! `(T,γ)`-balancing with height gossip over the reconstructed topology —
//! fire-and-forget links versus the per-link reliable-delivery sublayer
//! (sliding window + cumulative ack + capped-backoff retransmit). The
//! packet-conservation ledger, extended with the reliable transport's
//! custody term, is checked on every run.
//!
//! The workload stops injecting before the run ends so queues and
//! retransmit windows can drain: the delivered fraction then isolates
//! *loss*, not end-of-run truncation. With reliability on, delivery
//! returns to ~1.0 at loss rates up to 30% — the `(T,γ)` throughput
//! guarantee survives lossy links at a bounded retransmit overhead —
//! while fire-and-forget bleeds a constant fraction per hop.

use super::table::{f3, Table};
use adhoc_core::ThetaAlg;
use adhoc_geom::distributions::NodeDistribution;
use adhoc_routing::BalancingConfig;
use adhoc_runtime::{
    edge_fidelity, run_gossip_balancing, run_theta_protocol, uniform_workload, FaultConfig,
    GossipConfig, GossipRun, ReliableConfig, ThetaTiming,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Loss rates swept (30% is well past the fire-and-forget knee).
const LOSSES: [f64; 4] = [0.0, 0.1, 0.2, 0.3];

/// One loss rate's measurements: the ΘALG protocol run plus both
/// gossip-balancing modes over the topology it built.
struct LossPoint {
    loss: f64,
    theta_digest: u64,
    fidelity: f64,
    exact: bool,
    fire_and_forget: GossipRun,
    reliable: GossipRun,
}

/// Execute the sweep (shared by [`run`] and [`golden_digests`]).
fn sweep(quick: bool) -> Vec<LossPoint> {
    let n = if quick { 40 } else { 120 };
    let inject_steps = if quick { 250 } else { 1500 };
    let drain_steps = if quick { 450 } else { 800 };
    let steps = inject_steps + drain_steps;

    let mut rng = ChaCha8Rng::seed_from_u64(20_000);
    let points = NodeDistribution::unit_square()
        .sample(n, &mut rng)
        .expect("sampling");
    let range = adhoc_geom::default_max_range(n);
    let alg = ThetaAlg::new(PI / 3.0, range);
    let direct = alg.build(&points);

    LOSSES
        .iter()
        .map(|&loss| {
            let faults = FaultConfig::lossy(loss);
            let theta = run_theta_protocol(
                &points,
                alg.sectors(),
                range,
                ThetaTiming::default(),
                faults,
                4242,
            );

            // Route over what the protocol actually built, under the same
            // faults: packets to one sink, uniform sources, injections
            // stopping early enough to drain.
            let dests = [0u32];
            let workload = uniform_workload(n, &dests, inject_steps, 2, 99);
            let cfg = GossipConfig::new(
                BalancingConfig {
                    threshold: 0.5,
                    gamma: 0.1,
                    capacity: 40,
                },
                steps,
            );
            let gossip =
                |cfg| run_gossip_balancing(&theta.graph, &dests, cfg, &workload, faults, 4242);

            LossPoint {
                loss,
                theta_digest: theta.digest,
                fidelity: edge_fidelity(&direct.spatial, &theta.graph),
                exact: direct.spatial.graph == theta.graph.graph,
                fire_and_forget: gossip(cfg),
                reliable: gossip(cfg.with_reliability(ReliableConfig::default())),
            }
        })
        .collect()
}

/// Run E20 and return the table.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E20 (runtime, §2.1+§3.2 under faults): ΘALG + (T,γ)-balancing, \
         fire-and-forget vs reliable-delivery sublayer",
        &[
            "loss rate",
            "mode",
            "θ fidelity",
            "exact 𝒩",
            "delivery",
            "pkts lost",
            "in flight",
            "retransmits",
            "acks",
            "conserved",
        ],
    );
    for point in sweep(quick) {
        for (mode, g) in [
            ("fire-and-forget", &point.fire_and_forget),
            ("reliable", &point.reliable),
        ] {
            table.push(vec![
                f3(point.loss),
                mode.to_string(),
                f3(point.fidelity),
                point.exact.to_string(),
                f3(g.delivery_rate()),
                g.link_lost.to_string(),
                g.in_flight.to_string(),
                g.stats.retransmits.to_string(),
                g.stats.acks.to_string(),
                g.conserved().to_string(),
            ]);
        }
    }
    table
}

/// Replay digests of every quick-sweep scenario, for the golden
/// transcript-digest regression suite (`tests/golden_digests.rs`): a
/// refactor that changes replay behaviour — event ordering, RNG
/// consumption, message contents — shows up as a digest mismatch.
pub fn golden_digests() -> Vec<(String, u64)> {
    let mut out = Vec::new();
    for point in sweep(true) {
        let pct = (point.loss * 100.0).round() as u32;
        out.push((format!("e20/theta/loss{pct:02}"), point.theta_digest));
        out.push((
            format!("e20/gossip-ff/loss{pct:02}"),
            point.fire_and_forget.digest,
        ));
        out.push((
            format!("e20/gossip-rel/loss{pct:02}"),
            point.reliable.digest,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_acceptance_criteria() {
        let t = run(true);
        assert_eq!(t.rows.len(), LOSSES.len() * 2);
        for row in &t.rows {
            let loss: f64 = row[0].parse().unwrap();
            let fidelity: f64 = row[2].parse().unwrap();
            let exact = &row[3] == "true";
            // Acceptance: exact reconstruction, or ≥ 99% fidelity at the
            // higher loss rates (past the 16-try retransmit budget).
            assert!(
                exact || (loss >= 0.2 && fidelity >= 0.99),
                "loss {loss}: fidelity {fidelity}, exact {exact}"
            );
            assert_eq!(row[9], "true", "conservation violated: {row:?}");
            let delivery: f64 = row[4].parse().unwrap();
            if row[1] == "reliable" {
                // The tentpole claim: the reliable sublayer returns the
                // delivered fraction to ~1.0 at every swept loss rate.
                assert!(
                    delivery >= 0.99,
                    "reliable delivery {delivery} at loss {loss}: {row:?}"
                );
                let retransmits: u64 = row[7].parse().unwrap();
                if loss > 0.0 {
                    assert!(retransmits > 0, "loss {loss} retransmitted nothing");
                    // Bounded overhead: retransmits stay within a small
                    // multiple of the admitted packet count.
                    let acks: u64 = row[8].parse().unwrap();
                    assert!(acks > 0);
                } else {
                    assert_eq!(retransmits, 0, "spurious retransmits at loss 0");
                }
            }
        }
        // Fire-and-forget demonstrably degrades at 30% loss...
        let ff_30: f64 = t.rows[6][4].parse().unwrap();
        assert!(ff_30 < 0.9, "fire-and-forget at 30% delivered {ff_30}");
        // ...while the reliable row at the same loss stays ≥ 0.99.
        let rel_30: f64 = t.rows[7][4].parse().unwrap();
        assert!(rel_30 >= 0.99);
        // Lossless fire-and-forget loses nothing.
        assert_eq!(t.rows[0][5], "0");
    }

    #[test]
    fn golden_digest_names_are_unique_and_stable() {
        let d = golden_digests();
        assert_eq!(d.len(), LOSSES.len() * 3);
        let mut names: Vec<&str> = d.iter().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), d.len(), "duplicate scenario names");
        // Determinism: a second sweep reproduces every digest.
        assert_eq!(d, golden_digests());
    }
}
