//! **E8 — Corollaries 3.4 / 3.5**: the full stack — ΘALG topology +
//! randomized MAC + `(T,γ,I)`-balancing — is `(O(1/I), O(L̄))`-competitive
//! against an optimum free to use *any* `G*` edge without interference;
//! for uniform random nodes `I = O(log n)`, so the throughput ratio decays
//! no faster than `1/log n`.
//!
//! Protocol: OPT is a wave schedule on `G*`. Our stack receives the same
//! injections but routes over `𝒩` under its own MAC for
//! `passes × |schedule|` steps. The column `ratio·log₂n` must stay
//! roughly flat as `n` doubles (Corollary 3.5's shape).

use super::table::{f2, f3, Table};
use crate::schedule::build_schedule;
use crate::workloads::Workload;
use adhoc_core::ThetaAlg;
use adhoc_geom::distributions::NodeDistribution;
use adhoc_interference::{ActivationRule, InterferenceModel};
use adhoc_proximity::unit_disk_graph;
use adhoc_routing::{BalancingConfig, InterferenceRouter};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Run E8 and return the table.
pub fn run(quick: bool) -> Table {
    let sizes: &[usize] = if quick {
        &[60, 120]
    } else {
        &[60, 120, 240, 480]
    };
    let packets_per_node = 2;
    let passes = if quick { 40 } else { 120 };

    let mut table = Table::new(
        "E8 (Cor 3.4/3.5): ΘALG + (T,γ,I)-balancing vs OPT on G* — throughput ratio ~ 1/log n",
        &[
            "n",
            "I(𝒩)",
            "OPT packets",
            "delivered",
            "delivered ratio",
            "rate ratio",
            "rate·I",
        ],
    );

    for &n in sizes {
        let mut rng = ChaCha8Rng::seed_from_u64(8000 + n as u64);
        let points = NodeDistribution::unit_square()
            .sample(n, &mut rng)
            .expect("sampling");
        let range = adhoc_geom::default_max_range(n);
        let gstar = unit_disk_graph(&points, range);
        let topo = ThetaAlg::new(PI / 3.0, range).build(&points);

        // OPT: wave schedule on the FULL transmission graph. Sustained
        // flows (each distinct pair repeated) so gradients can exceed the
        // balancing threshold.
        let distinct = Workload::RandomPairs.pairs(n, n / 4, &mut rng);
        let mut pairs = Vec::new();
        for _ in 0..(4 * packets_per_node) {
            pairs.extend(distinct.iter().copied());
        }
        let schedule = build_schedule(&gstar, 2.0, &pairs);
        let mut dests: Vec<u32> = schedule
            .injections
            .iter()
            .flat_map(|v| v.iter().map(|&(_, d)| d))
            .collect();
        dests.sort_unstable();
        dests.dedup();

        // Our stack on 𝒩 with its own randomized MAC.
        let cfg = BalancingConfig {
            threshold: 0.5,
            gamma: 0.05,
            capacity: 60,
        };
        let mut ir = InterferenceRouter::new(
            &topo.spatial,
            &dests,
            cfg,
            InterferenceModel::new(0.5),
            ActivationRule::Local,
            2.0,
        );
        let mut proto_rng = ChaCha8Rng::seed_from_u64(8100 + n as u64);
        // Same injections, then free steps to drain (OPT's step count
        // times `passes`).
        for &(src, dest) in schedule.injections.iter().flatten() {
            ir.inject(src, dest);
        }
        let steps = schedule.len().max(1) * passes;
        for _ in 0..steps {
            ir.step(&mut proto_rng);
        }
        let inter_num = ir.mac().interference_number();
        let m = ir.metrics();
        let ratio = m.delivered as f64 / schedule.packets.max(1) as f64;
        // The corollary's 1/I factor lives in the *rate*: deliveries per
        // step relative to OPT's packets per step.
        let our_rate = m.delivered as f64 / steps.max(1) as f64;
        let opt_rate = schedule.packets as f64 / schedule.len().max(1) as f64;
        let rate_ratio = our_rate / opt_rate.max(1e-12);
        table.push(vec![
            n.to_string(),
            inter_num.to_string(),
            schedule.packets.to_string(),
            m.delivered.to_string(),
            f3(ratio),
            f3(rate_ratio),
            f2(rate_ratio * inter_num as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_delivers_most_packets_eventually() {
        let t = run(true);
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            let ratio: f64 = row[4].parse().unwrap();
            // With generous draining the stack should deliver the large
            // majority of OPT's packets (the *rate* is what pays the
            // 1/log n factor, not the eventual count).
            assert!(ratio > 0.5, "end-to-end delivered ratio {ratio}: {row:?}");
        }
    }
}
