//! **E13 — the paper's open problem**: *"For a general distribution of
//! nodes, however, we have not been able to resolve whether `𝒩` is a
//! spanner and we leave this question as an open problem."* (§2)
//!
//! This experiment probes the question empirically: it measures the
//! *distance*-stretch (the spanner measure — energy-stretch is already
//! settled by Theorem 2.2) of `𝒩` on distribution families engineered to
//! be hard for proximity structures, and reports the worst configuration
//! found. It also pits ΘALG against the global comparators of §2.1
//! (greedy spanner / decreasing-length prune), quantifying their
//! non-local work.

use super::table::{f2, f3, Table};
use adhoc_core::{greedy_spanner, prune_spanner, ThetaAlg};
use adhoc_geom::distributions::NodeDistribution;
use adhoc_geom::SectorPartition;
use adhoc_proximity::{unit_disk_graph, yao_graph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Run E13 and return the table.
pub fn run(quick: bool) -> Table {
    let n = if quick { 80 } else { 200 };
    let trials = if quick { 3 } else { 10 };
    let dists = [
        NodeDistribution::unit_square(),
        NodeDistribution::Clustered {
            clusters: 3,
            sigma: 0.004,
        },
        NodeDistribution::ExponentialChain {
            base: 1e-4,
            growth: 1.35,
        },
        NodeDistribution::Ring { radius: 0.45 },
    ];

    let mut table = Table::new(
        "E13 (open problem §2): worst observed distance-stretch of 𝒩 — plus the global comparators' cost",
        &[
            "dist", "worst dstretch(𝒩)", "worst dstretch(Yao)", "dstretch(greedy t=2)",
            "global SP queries", "maxdeg(𝒩)",
        ],
    );

    for dist in &dists {
        let mut worst_theta: f64 = 0.0;
        let mut worst_yao: f64 = 0.0;
        let mut worst_greedy: f64 = 0.0;
        let mut queries = 0usize;
        let mut maxdeg = 0usize;
        for t in 0..trials {
            let mut rng = ChaCha8Rng::seed_from_u64(13_000 + t as u64);
            let points = match dist.sample(n, &mut rng) {
                Ok(p) => p,
                Err(_) => continue,
            };
            // Full range: the open problem is about the complete G*.
            let span = points
                .iter()
                .flat_map(|p| [p.x.abs(), p.y.abs()])
                .fold(1.0f64, f64::max);
            let range = 4.0 * span;
            let gstar = unit_disk_graph(&points, range);
            let alg = ThetaAlg::new(PI / 3.0, range);
            let topo = alg.build(&points);
            let yao = yao_graph(&points, SectorPartition::with_max_angle(PI / 3.0), range);
            let sources: Vec<u32> = (0..n as u32).step_by((n / 30).max(1)).collect();
            let st = adhoc_core::stretch::sampled_distance_stretch(&topo.spatial, &gstar, &sources);
            let st_yao = adhoc_core::stretch::sampled_distance_stretch(&yao, &gstar, &sources);
            worst_theta = worst_theta.max(st.max);
            worst_yao = worst_yao.max(st_yao.max);
            maxdeg = maxdeg.max(topo.spatial.graph.max_degree());
            // Comparators are expensive; probe on the first trial only.
            if t == 0 && n <= 100 {
                let (gsp, work) = greedy_spanner(&gstar, 2.0);
                let st_g = adhoc_core::stretch::sampled_distance_stretch(&gsp, &gstar, &sources);
                worst_greedy = worst_greedy.max(st_g.max);
                queries = work.shortest_path_queries;
            } else if t == 0 {
                // At larger n use the cheaper prune comparator on 𝒩₁.
                let (pruned, work) = prune_spanner(&yao, 2.0);
                let st_g = adhoc_core::stretch::sampled_distance_stretch(&pruned, &gstar, &sources);
                worst_greedy = worst_greedy.max(st_g.max);
                queries = work.shortest_path_queries;
            }
        }
        table.push(vec![
            dist.label().to_string(),
            f3(worst_theta),
            f3(worst_yao),
            f3(worst_greedy),
            queries.to_string(),
            f2(maxdeg as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_no_spanner_counterexample_found() {
        let t = run(true);
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            let st: f64 = row[1].parse().unwrap();
            // We never observed unbounded distance-stretch — consistent
            // with (but of course not proving) a positive answer to the
            // open problem. A blow-up here would be a research finding.
            assert!((1.0..12.0).contains(&st), "distance stretch {st}: {row:?}");
            // ΘALG's degree stays within Lemma 2.1's bound (12 at π/3).
            let deg: f64 = row[5].parse().unwrap();
            assert!(deg <= 12.0);
        }
    }
}
