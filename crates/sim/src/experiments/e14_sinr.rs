//! **E14 — model validation**: §2.4 adopts the pairwise *protocol*
//! interference model as "a simplified version of the *physical* model".
//! This experiment quantifies the simplification: across random
//! simultaneous transmission sets on the ΘALG topology, how often do the
//! protocol model (guard zone Δ) and the SINR physical model disagree —
//! and in which direction?
//!
//! The load-bearing column is the *optimism rate*: transmissions the
//! protocol model admits that the physical model kills. A suitable Δ
//! keeps it near zero, justifying the paper's abstraction.

use super::table::{f3, Table};
use adhoc_core::ThetaAlg;
use adhoc_geom::distributions::NodeDistribution;
use adhoc_interference::model::Transmission;
use adhoc_interference::{InterferenceModel, PowerPolicy, SinrModel};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Run E14 and return the table.
pub fn run(quick: bool) -> Table {
    let n = if quick { 100 } else { 250 };
    let batches_count = if quick { 400 } else { 2000 };
    let deltas: &[f64] = if quick {
        &[0.25, 1.0, 2.0]
    } else {
        &[0.25, 0.5, 1.0, 2.0, 4.0]
    };

    let mut table = Table::new(
        "E14 (model validation, §2.4): protocol (guard-zone Δ) vs physical (SINR) interference model",
        &[
            "Δ", "batches", "agreement", "optimism (danger)", "conservatism",
        ],
    );

    let mut rng = ChaCha8Rng::seed_from_u64(14_000);
    let points = NodeDistribution::unit_square()
        .sample(n, &mut rng)
        .expect("sampling");
    let range = adhoc_geom::default_max_range(n);
    let topo = ThetaAlg::new(PI / 3.0, range).build(&points);
    let edges: Vec<Transmission> = topo
        .spatial
        .graph
        .edges()
        .map(|(u, v, _)| Transmission::new(u, v))
        .collect();

    // Random batches of 2–5 concurrent 𝒩 transmissions.
    let mut batches: Vec<Vec<Transmission>> = Vec::with_capacity(batches_count);
    for _ in 0..batches_count {
        let k = rng.gen_range(2..=5usize);
        let mut batch = Vec::with_capacity(k);
        for _ in 0..k {
            batch.push(edges[rng.gen_range(0..edges.len())]);
        }
        batch.dedup();
        batches.push(batch);
    }

    let sinr = SinrModel {
        kappa: 3.0,
        beta: 1.2,
        noise: 1e-7,
        power: PowerPolicy::MinimumPlusMargin(4.0),
    };

    for &delta in deltas {
        let report =
            sinr.disagreement_with_protocol(&points, &batches, InterferenceModel::new(delta));
        table.push(vec![
            format!("{delta}"),
            report.total.to_string(),
            f3(report.agreement_rate()),
            f3(report.optimism_rate()),
            f3(report.protocol_conservative as f64 / report.total.max(1) as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_guard_zone_monotonicity() {
        let t = run(true);
        assert_eq!(t.rows.len(), 3);
        let optimism: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        let conservatism: Vec<f64> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        // Bigger guard zones can only make the protocol model more
        // cautious: optimism shrinks, conservatism grows.
        assert!(
            optimism.windows(2).all(|w| w[1] <= w[0] + 0.02),
            "optimism not decreasing in Δ: {optimism:?}"
        );
        assert!(
            conservatism.windows(2).all(|w| w[1] >= w[0] - 0.02),
            "conservatism not increasing in Δ: {conservatism:?}"
        );
        // At the largest Δ the dangerous direction is nearly gone.
        assert!(
            *optimism.last().unwrap() < 0.08,
            "guard zone too leaky: {optimism:?}"
        );
    }
}
