//! **E21 — churn and mobility under faults**: the paper's topology is
//! static, but its locality argument is exactly what makes repair cheap —
//! a membership or position change only perturbs the one-hop neighborhoods
//! that can see it. This experiment replays ΘALG and `(T,γ)`-balancing on
//! the runtime's churn engine: nodes join, gracefully leave, crash, and
//! drift mid-run, survivors re-run the two-phase cone construction
//! locally, and we measure
//!
//! * **fidelity** — the fraction of live nodes whose admitted set exactly
//!   matches the direct offline ΘALG construction on the final live
//!   positions (1.0 = perfect repair);
//! * **repair latency** — ticks from the last perturbation until the
//!   slowest live node last settled its neighborhood;
//! * the routed **delivery rate** and packet-conservation ledger of
//!   reliable gossip-balancing over the eroding topology (dead buffers
//!   stay `buffered`, in-flight copies to dead nodes become `link_lost`,
//!   reliable custody toward vanished peers is abandoned, and the ledger
//!   identity still holds exactly).
//!
//! Three churn shapes are swept against the E20 loss rates: `no-churn`
//! (control), `leave-heavy` (alternating graceful leaves and crashes),
//! and `drift-heavy` (random waypoint drift). Every run is digest-pinned
//! in the golden-transcript suite at 1 and 4 worker threads.

use super::table::{f3, Table};
use adhoc_core::ThetaAlg;
use adhoc_geom::distributions::NodeDistribution;
use adhoc_geom::Point;
use adhoc_routing::BalancingConfig;
use adhoc_runtime::{
    run_gossip_balancing_churn, run_theta_churn, shard_threads_from_env, uniform_workload,
    ChurnPlan, DelayDist, FaultConfig, GossipConfig, GossipRun, ReliableConfig, ThetaChurnRun,
    ThetaTiming,
};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Loss rates swept (same grid as E20).
const LOSSES: [f64; 4] = [0.0, 0.1, 0.2, 0.3];

/// The churn shapes.
const SCENARIOS: [&str; 3] = ["no-churn", "leave-heavy", "drift-heavy"];

/// Perturbation spacing: ≥ 3·round_len of the default ΘALG timing, so
/// lossless repairs finish before the next hit (the exactness regime —
/// see the runtime's theta module docs).
const SPACING: u64 = 200;

/// Build one scenario's churn plan. Node 0 is never touched — it is the
/// gossip sink. Perturbation subjects are a seeded shuffle of the rest.
fn scenario_plan(scenario: &str, n: usize, quick: bool, seed: u64) -> ChurnPlan {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut pool: Vec<u32> = (1..n as u32).collect();
    pool.shuffle(&mut rng);
    let mut plan = ChurnPlan::new();
    match scenario {
        "no-churn" => {}
        "leave-heavy" => {
            let k = if quick { 4 } else { 8 };
            for (i, &node) in pool.iter().take(k).enumerate() {
                let at = SPACING * (i as u64 + 1);
                plan = if i % 2 == 0 {
                    plan.leave(at, node)
                } else {
                    plan.crash(at, node)
                };
            }
        }
        "drift-heavy" => {
            let k = if quick { 6 } else { 12 };
            for (i, &node) in pool.iter().take(k).enumerate() {
                let at = SPACING * (i as u64 + 1);
                let to = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
                plan = plan.drift(at, node, to);
            }
        }
        other => unreachable!("unknown scenario {other}"),
    }
    plan
}

/// One (loss, scenario) cell: the ΘALG churn run plus reliable
/// gossip-balancing over the offline topology eroded by the same plan.
struct ChurnPoint {
    loss: f64,
    scenario: &'static str,
    theta: ThetaChurnRun,
    gossip: GossipRun,
}

/// Execute the sweep (shared by [`run`] and the acceptance test).
fn sweep(quick: bool) -> Vec<ChurnPoint> {
    let n = if quick { 40 } else { 120 };
    let inject_steps = if quick { 250 } else { 1500 };
    let drain_steps = if quick { 450 } else { 800 };
    let steps = inject_steps + drain_steps;

    let mut rng = ChaCha8Rng::seed_from_u64(20_000);
    let points = NodeDistribution::unit_square()
        .sample(n, &mut rng)
        .expect("sampling");
    let range = adhoc_geom::default_max_range(n);
    let alg = ThetaAlg::new(PI / 3.0, range);
    let direct = alg.build(&points);
    let threads = shard_threads_from_env();

    let mut out = Vec::new();
    for &loss in &LOSSES {
        let faults = FaultConfig::lossy(loss);
        for scenario in SCENARIOS {
            let plan = scenario_plan(scenario, n, quick, 7_100);
            let theta = run_theta_churn(
                &points,
                alg.sectors(),
                range,
                ThetaTiming::default(),
                faults,
                4242,
                &plan,
                threads,
            );
            let dests = [0u32];
            let workload = uniform_workload(n, &dests, inject_steps, 2, 99);
            let cfg = GossipConfig::new(
                BalancingConfig {
                    threshold: 0.5,
                    gamma: 0.1,
                    capacity: 40,
                },
                steps,
            )
            .with_reliability(ReliableConfig::default());
            let gossip = run_gossip_balancing_churn(
                &direct.spatial,
                &dests,
                cfg,
                &workload,
                faults,
                4242,
                &plan,
                threads,
            );
            out.push(ChurnPoint {
                loss,
                scenario,
                theta,
                gossip,
            });
        }
    }
    out
}

/// Run E21 and return the table.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E21 (runtime churn, §2.1 locality under membership change): ΘALG \
         re-convergence + reliable (T,γ)-balancing over an eroding topology",
        &[
            "loss rate",
            "scenario",
            "live",
            "θ fidelity",
            "repair lat",
            "reconv",
            "delivery",
            "pkts lost",
            "conserved",
        ],
    );
    for p in sweep(quick) {
        table.push(vec![
            f3(p.loss),
            p.scenario.to_string(),
            p.theta.live.len().to_string(),
            f3(p.theta.fidelity),
            p.theta.repair_latency.to_string(),
            p.theta.stats.reconvergences.to_string(),
            f3(p.gossip.delivery_rate()),
            p.gossip.link_lost.to_string(),
            p.gossip.conserved().to_string(),
        ]);
    }
    table
}

/// Replay digests pinning churn behaviour for the golden
/// transcript-digest suite (`tests/golden_digests.rs`): 3 seeds × the 3
/// churn shapes, under loss, duplication, and jittered delays. The CI
/// thread matrix reruns these at 1 and 4 worker threads against the same
/// fixture, so the digests also enforce executor equivalence.
pub fn golden_digests() -> Vec<(String, u64)> {
    let n = 40;
    let mut rng = ChaCha8Rng::seed_from_u64(20_000);
    let points = NodeDistribution::unit_square()
        .sample(n, &mut rng)
        .expect("sampling");
    let range = adhoc_geom::default_max_range(n);
    let alg = ThetaAlg::new(PI / 3.0, range);
    let faults = FaultConfig {
        drop_prob: 0.1,
        duplicate_prob: 0.05,
        delay: DelayDist::Uniform { min: 1, max: 4 },
    };
    let threads = shard_threads_from_env();
    let mut out = Vec::new();
    for seed in [1u64, 2, 3] {
        for scenario in SCENARIOS {
            let plan = scenario_plan(scenario, n, true, 7_000 + seed);
            let run = run_theta_churn(
                &points,
                alg.sectors(),
                range,
                ThetaTiming::default(),
                faults,
                seed,
                &plan,
                threads,
            );
            out.push((format!("e21/{scenario}/s{seed}"), run.digest));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_acceptance_criteria() {
        let t = run(true);
        assert_eq!(t.rows.len(), LOSSES.len() * SCENARIOS.len());
        for row in &t.rows {
            let loss: f64 = row[0].parse().unwrap();
            let scenario = row[1].as_str();
            let fidelity: f64 = row[3].parse().unwrap();
            let repair: u64 = row[4].parse().unwrap();
            // Lossless repair is exact, for every churn shape — the
            // locality claim under membership change.
            if loss == 0.0 {
                assert_eq!(fidelity, 1.0, "{scenario} at loss 0: {row:?}");
            } else {
                assert!(fidelity >= 0.9, "{scenario} at loss {loss}: {row:?}");
            }
            if scenario == "no-churn" {
                // With no perturbation, "repair" is initial convergence.
                assert_eq!(repair, 2 * ThetaTiming::default().round_len);
                assert_eq!(row[5], "0", "reconvergences without churn");
            } else {
                assert!(repair > 0, "{scenario}: zero repair latency");
                let reconv: u64 = row[5].parse().unwrap();
                assert!(reconv > 0, "{scenario}: no local re-convergences");
            }
            // The packet ledger survives churn exactly, at every loss.
            assert_eq!(row[8], "true", "conservation violated: {row:?}");
            let delivery: f64 = row[6].parse().unwrap();
            assert!(delivery > 0.0, "nothing delivered: {row:?}");
        }
    }

    #[test]
    fn golden_digest_names_are_unique_and_stable() {
        let d = golden_digests();
        assert_eq!(d.len(), 9);
        let mut names: Vec<&str> = d.iter().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), d.len(), "duplicate scenario names");
        assert_eq!(d, golden_digests());
    }
}
