//! The carrier type shared by all geometric graph constructions.

use adhoc_geom::Point;
use adhoc_graph::{Graph, NodeId};
use serde::{Deserialize, Serialize};

/// A graph embedded in the plane: node positions plus a distance-weighted
/// topology. Every construction in this workspace stores the **Euclidean
/// length** as the edge weight; energy weights (`|uv|^κ`) are derived on
/// demand via [`SpatialGraph::energy_graph`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialGraph {
    pub points: Vec<Point>,
    pub graph: Graph,
    /// The maximum transmission range `D` this graph was built under.
    pub max_range: f64,
}

impl SpatialGraph {
    /// Bundle positions + topology. Panics if the node counts disagree.
    pub fn new(points: Vec<Point>, graph: Graph, max_range: f64) -> Self {
        assert_eq!(
            points.len(),
            graph.num_nodes(),
            "points and graph node counts must match"
        );
        SpatialGraph {
            points,
            graph,
            max_range,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Position of node `u`.
    #[inline]
    pub fn pos(&self, u: NodeId) -> Point {
        self.points[u as usize]
    }

    /// Euclidean length of edge `(u, v)` — computed from positions, not
    /// from the stored weight (so it also works for non-edges).
    #[inline]
    pub fn edge_len(&self, u: NodeId, v: NodeId) -> f64 {
        self.pos(u).dist(self.pos(v))
    }

    /// The same topology re-weighted with transmission energy `|uv|^κ`
    /// (paper §2.2; `κ ∈ [2, 4]`).
    pub fn energy_graph(&self, kappa: f64) -> Graph {
        assert!(kappa >= 1.0, "κ must be ≥ 1, got {kappa}");
        let pts = &self.points;
        self.graph
            .map_weights(|u, v, _| pts[u as usize].energy_cost(pts[v as usize], kappa))
    }

    /// The same topology re-weighted with unit (hop-count) weights.
    pub fn hop_graph(&self) -> Graph {
        self.graph.map_weights(|_, _, _| 1.0)
    }

    /// Longest edge in the topology (0.0 if there are no edges).
    pub fn max_edge_len(&self) -> f64 {
        self.graph.edges().map(|(_, _, w)| w).fold(0.0f64, f64::max)
    }

    /// Shortest edge in the topology (`None` if there are no edges).
    pub fn min_edge_len(&self) -> Option<f64> {
        self.graph
            .edges()
            .map(|(_, _, w)| w)
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_graph::GraphBuilder;

    fn sample() -> SpatialGraph {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
        ];
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        SpatialGraph::new(points, b.build(), 2.0)
    }

    #[test]
    fn accessors() {
        let sg = sample();
        assert_eq!(sg.len(), 3);
        assert!(!sg.is_empty());
        assert_eq!(sg.pos(1), Point::new(1.0, 0.0));
        assert!((sg.edge_len(0, 2) - 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(sg.max_range, 2.0);
    }

    #[test]
    fn energy_reweighting() {
        let sg = sample();
        let e2 = sg.energy_graph(2.0);
        assert_eq!(e2.edge_weight(0, 1), Some(1.0));
        let e4 = sg.energy_graph(4.0);
        assert_eq!(e4.edge_weight(1, 2), Some(1.0)); // unit edges unchanged
                                                     // Non-unit edge scales
        let points = vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)];
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 2.0);
        let sg2 = SpatialGraph::new(points, b.build(), 3.0);
        assert_eq!(sg2.energy_graph(2.0).edge_weight(0, 1), Some(4.0));
        assert_eq!(sg2.energy_graph(3.0).edge_weight(0, 1), Some(8.0));
    }

    #[test]
    fn hop_reweighting() {
        let sg = sample();
        let h = sg.hop_graph();
        assert_eq!(h.edge_weight(0, 1), Some(1.0));
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn edge_len_extremes() {
        let sg = sample();
        assert_eq!(sg.max_edge_len(), 1.0);
        assert_eq!(sg.min_edge_len(), Some(1.0));
        let empty = SpatialGraph::new(vec![], GraphBuilder::new(0).build(), 1.0);
        assert_eq!(empty.max_edge_len(), 0.0);
        assert_eq!(empty.min_edge_len(), None);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        SpatialGraph::new(vec![Point::ORIGIN], GraphBuilder::new(2).build(), 1.0);
    }

    #[test]
    #[should_panic]
    fn bad_kappa_panics() {
        sample().energy_graph(0.5);
    }
}
