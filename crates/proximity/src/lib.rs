//! # adhoc-proximity
//!
//! Baseline proximity structures for the SPAA'03 reproduction.
//!
//! The paper's related-work section (§1.2, §2) compares the ΘALG topology
//! `𝒩` against classic geometric structures; this crate implements them so
//! every stretch/degree/interference experiment can report the full
//! comparison table:
//!
//! * [`unit_disk_graph`] — the transmission graph `G*` itself (all pairs
//!   within maximum range `D`).
//! * [`yao_graph`] — the phase-1 graph `𝒩₁` (= the Yao/θ-graph): each node
//!   links to its nearest neighbor in every sector. A spanner, but with
//!   worst-case degree `Ω(n)`.
//! * [`gabriel_graph`] — optimal-energy paths by definition (for κ ≥ 2),
//!   but degree `Ω(n)` in the worst case.
//! * [`relative_neighborhood_graph`] — sparser than Gabriel; polynomial
//!   energy-stretch.
//! * [`knn_graph`] — "connect to k closest": the paper's intro example of
//!   a topology that does **not** guarantee connectivity.
//! * [`euclidean_mst`] — sparsest connected baseline; unbounded stretch.
//!
//! All constructions share the [`SpatialGraph`] carrier: points plus a
//! distance-weighted [`adhoc_graph::Graph`], with [`SpatialGraph::energy_graph`]
//! providing the `|uv|^κ` re-weighting used by energy-stretch analyses.

pub mod beta_skeleton;
pub mod delaunay;
pub mod gabriel;
pub mod knn;
pub mod rng_graph;
pub mod spatial;
pub mod udg;
pub mod yao;

pub use beta_skeleton::beta_skeleton;
pub use delaunay::{delaunay_graph, restricted_delaunay_graph};
pub use gabriel::gabriel_graph;
pub use knn::knn_graph;
pub use rng_graph::relative_neighborhood_graph;
pub use spatial::SpatialGraph;
pub use udg::unit_disk_graph;
pub use yao::yao_graph;

use adhoc_graph::kruskal_mst;

/// Euclidean minimum spanning forest of the unit-disk graph with the given
/// range (a true EMST when the UDG is connected).
pub fn euclidean_mst(points: &[adhoc_geom::Point], range: f64) -> SpatialGraph {
    let udg = unit_disk_graph(points, range);
    SpatialGraph::new(points.to_vec(), kruskal_mst(&udg.graph), range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_geom::Point;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn pts(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    /// Classic inclusion chain: EMST ⊆ RNG ⊆ Gabriel ⊆ UDG (with a range
    /// large enough to make the UDG complete).
    #[test]
    fn inclusion_chain() {
        let points = pts(60, 77);
        let range = 10.0;
        let mst = euclidean_mst(&points, range);
        let rng_g = relative_neighborhood_graph(&points, range);
        let gg = gabriel_graph(&points, range);
        let udg = unit_disk_graph(&points, range);
        for (u, v, _) in mst.graph.edges() {
            assert!(rng_g.graph.has_edge(u, v), "MST edge ({u},{v}) not in RNG");
        }
        for (u, v, _) in rng_g.graph.edges() {
            assert!(gg.graph.has_edge(u, v), "RNG edge ({u},{v}) not in Gabriel");
        }
        for (u, v, _) in gg.graph.edges() {
            assert!(
                udg.graph.has_edge(u, v),
                "Gabriel edge ({u},{v}) not in UDG"
            );
        }
    }

    #[test]
    fn mst_is_spanning_when_connected() {
        let points = pts(40, 3);
        let mst = euclidean_mst(&points, 10.0);
        assert_eq!(mst.graph.num_edges(), points.len() - 1);
        assert!(adhoc_graph::is_connected(&mst.graph));
    }
}
