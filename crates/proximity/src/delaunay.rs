//! Delaunay triangulation (Bowyer–Watson) and the restricted Delaunay
//! graph.
//!
//! The paper's related-work section (§1.2) discusses both: the Delaunay
//! triangulation is a spanner but "may include edges much longer than the
//! transmission range of a node", while *restricted Delaunay graphs* —
//! Delaunay edges no longer than the transmission radius — are also
//! spanners but have worst-case degree `Ω(n)`. Both serve as comparison
//! baselines in the stretch experiments.
//!
//! The implementation is an incremental Bowyer–Watson with a super
//! triangle, `O(n²)` worst case (no point-location structure) — entirely
//! adequate for the experiment sizes, and verified against an `O(n⁴)`
//! empty-circumcircle oracle in the tests.

use crate::spatial::SpatialGraph;
use adhoc_geom::point::orient2d;
use adhoc_geom::Point;
use adhoc_graph::GraphBuilder;

/// A triangle as indices into the (extended) point array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Tri(u32, u32, u32);

impl Tri {
    fn edges(&self) -> [(u32, u32); 3] {
        [(self.0, self.1), (self.1, self.2), (self.2, self.0)]
    }

    fn has_vertex(&self, v: u32) -> bool {
        self.0 == v || self.1 == v || self.2 == v
    }
}

/// Is `p` strictly inside the circumcircle of the (counterclockwise)
/// triangle `(a, b, c)`?
fn in_circumcircle(a: Point, b: Point, c: Point, p: Point) -> bool {
    // Standard 3×3 determinant test on lifted coordinates.
    let (ax, ay) = (a.x - p.x, a.y - p.y);
    let (bx, by) = (b.x - p.x, b.y - p.y);
    let (cx, cy) = (c.x - p.x, c.y - p.y);
    let det = (ax * ax + ay * ay) * (bx * cy - cx * by) - (bx * bx + by * by) * (ax * cy - cx * ay)
        + (cx * cx + cy * cy) * (ax * by - bx * ay);
    det > 0.0
}

/// Compute the Delaunay edges of `points` (as index pairs `u < v`).
///
/// Degenerate inputs (all collinear, duplicates) yield the edges of any
/// valid triangulation of the distinct points; exact ties on cocircular
/// quadruples are broken arbitrarily by insertion order.
pub fn delaunay_edges(points: &[Point]) -> Vec<(u32, u32)> {
    let n = points.len();
    if n < 2 {
        return Vec::new();
    }
    if n == 2 {
        return vec![(0, 1)];
    }

    // Super-triangle comfortably containing everything.
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for p in points {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    let span = (max_x - min_x).max(max_y - min_y).max(1.0);
    let cx = 0.5 * (min_x + max_x);
    let cy = 0.5 * (min_y + max_y);
    let big = 20.0 * span;
    let mut pts: Vec<Point> = points.to_vec();
    let s0 = n as u32;
    let s1 = n as u32 + 1;
    let s2 = n as u32 + 2;
    pts.push(Point::new(cx - big, cy - big));
    pts.push(Point::new(cx + big, cy - big));
    pts.push(Point::new(cx, cy + big));

    let ccw = |t: &Tri| -> Tri {
        if orient2d(pts[t.0 as usize], pts[t.1 as usize], pts[t.2 as usize]) < 0.0 {
            Tri(t.0, t.2, t.1)
        } else {
            *t
        }
    };

    let mut tris: Vec<Tri> = vec![ccw(&Tri(s0, s1, s2))];

    for i in 0..n as u32 {
        let p = pts[i as usize];
        // Bad triangles: circumcircle contains p.
        let mut bad: Vec<usize> = Vec::new();
        for (k, t) in tris.iter().enumerate() {
            if in_circumcircle(pts[t.0 as usize], pts[t.1 as usize], pts[t.2 as usize], p) {
                bad.push(k);
            }
        }
        // Boundary of the cavity: edges appearing in exactly one bad
        // triangle.
        let mut boundary: Vec<(u32, u32)> = Vec::new();
        for &k in &bad {
            for (a, b) in tris[k].edges() {
                // An edge is shared iff the reversed edge occurs in some
                // other bad triangle.
                let shared = bad
                    .iter()
                    .any(|&k2| k2 != k && tris[k2].edges().iter().any(|&(c, d)| c == b && d == a));
                if !shared {
                    boundary.push((a, b));
                }
            }
        }
        // Remove bad triangles (descending index order).
        for &k in bad.iter().rev() {
            tris.swap_remove(k);
        }
        // Re-triangulate the cavity.
        for (a, b) in boundary {
            if a != i && b != i {
                tris.push(ccw(&Tri(a, b, i)));
            }
        }
    }

    // Collect edges not touching the super-triangle.
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for t in &tris {
        if t.has_vertex(s0) || t.has_vertex(s1) || t.has_vertex(s2) {
            continue;
        }
        for (a, b) in t.edges() {
            edges.push(if a < b { (a, b) } else { (b, a) });
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// The full Delaunay triangulation as a [`SpatialGraph`] (edge weights =
/// Euclidean lengths). Note: may contain edges longer than any radio
/// range — see [`restricted_delaunay_graph`].
pub fn delaunay_graph(points: &[Point]) -> SpatialGraph {
    let mut b = GraphBuilder::new(points.len());
    for (u, v) in delaunay_edges(points) {
        b.add_edge(u, v, points[u as usize].dist(points[v as usize]));
    }
    SpatialGraph::new(points.to_vec(), b.build(), f64::INFINITY)
}

/// The restricted Delaunay graph: Delaunay edges of length at most
/// `range` (the structure of Gao et al. cited in §1.2 — a spanner with
/// unbounded degree).
pub fn restricted_delaunay_graph(points: &[Point], range: f64) -> SpatialGraph {
    assert!(
        range.is_finite() && range > 0.0,
        "range must be positive, got {range}"
    );
    let mut b = GraphBuilder::new(points.len());
    for (u, v) in delaunay_edges(points) {
        let d = points[u as usize].dist(points[v as usize]);
        if d <= range {
            b.add_edge(u, v, d);
        }
    }
    SpatialGraph::new(points.to_vec(), b.build(), range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    /// O(n⁴) oracle: (u,v) is Delaunay iff some circle through u, v is
    /// empty. For points in general position it suffices to check circles
    /// through (u, v, w) for all w plus the diametral circle.
    #[allow(clippy::needless_range_loop)] // index-based witness search over point ids
    fn is_delaunay_edge_oracle(points: &[Point], u: usize, v: usize) -> bool {
        let n = points.len();
        // diametral circle empty?
        let mid = points[u].midpoint(points[v]);
        let r = 0.5 * points[u].dist(points[v]);
        if (0..n).all(|w| w == u || w == v || !points[w].in_open_disk(mid, r * (1.0 - 1e-12))) {
            return true;
        }
        // circle through u, v, w empty for some w?
        'witness: for w in 0..n {
            if w == u || w == v {
                continue;
            }
            let (a, b, c) = (points[u], points[v], points[w]);
            if orient2d(a, b, c).abs() < 1e-12 {
                continue;
            }
            for x in 0..n {
                if x == u || x == v || x == w {
                    continue;
                }
                // x strictly inside circumcircle of (a,b,c)?
                let inside = if orient2d(a, b, c) > 0.0 {
                    in_circumcircle(a, b, c, points[x])
                } else {
                    in_circumcircle(a, c, b, points[x])
                };
                if inside {
                    continue 'witness;
                }
            }
            return true;
        }
        false
    }

    #[test]
    fn matches_oracle_on_random_points() {
        let points = uniform(30, 91);
        let edges = delaunay_edges(&points);
        let edge_set: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
        for u in 0..points.len() {
            for v in (u + 1)..points.len() {
                let expected = is_delaunay_edge_oracle(&points, u, v);
                let got = edge_set.contains(&(u as u32, v as u32));
                assert_eq!(got, expected, "edge ({u},{v})");
            }
        }
    }

    #[test]
    fn triangle_count_euler() {
        // For points in general position: |E| ≤ 3n − 6 (planar) and the
        // triangulation is connected and spanning.
        let points = uniform(100, 93);
        let g = delaunay_graph(&points);
        assert!(g.graph.num_edges() <= 3 * points.len() - 6);
        assert!(adhoc_graph::is_connected(&g.graph));
    }

    #[test]
    fn square_with_center() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
            Point::new(0.5, 0.5),
        ];
        let edges = delaunay_edges(&points);
        // center connects to all four corners; plus the four sides
        assert_eq!(edges.len(), 8);
        for corner in 0..4u32 {
            assert!(edges.contains(&(corner, 4)), "missing center edge {corner}");
        }
    }

    #[test]
    fn tiny_inputs() {
        assert!(delaunay_edges(&[]).is_empty());
        assert!(delaunay_edges(&[Point::ORIGIN]).is_empty());
        assert_eq!(
            delaunay_edges(&[Point::ORIGIN, Point::new(1.0, 0.0)]),
            vec![(0, 1)]
        );
        let tri = delaunay_edges(&[
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 1.0),
        ]);
        assert_eq!(tri.len(), 3);
    }

    #[test]
    fn gabriel_subset_of_delaunay() {
        // Classic inclusion: Gabriel ⊆ Delaunay.
        let points = uniform(60, 97);
        let gg = crate::gabriel::gabriel_graph(&points, 10.0);
        let del = delaunay_graph(&points);
        for (u, v, _) in gg.graph.edges() {
            assert!(
                del.graph.has_edge(u, v),
                "Gabriel edge ({u},{v}) not Delaunay"
            );
        }
    }

    #[test]
    fn delaunay_is_a_spanner_empirically() {
        use adhoc_graph::pairwise_stretch;
        let points = uniform(80, 99);
        let del = delaunay_graph(&points);
        let full = crate::udg::unit_disk_graph(&points, 10.0);
        let st = pairwise_stretch(&del.graph, &full.graph);
        assert!(st.connectivity_preserved());
        // Known bound ~2.42; allow margin.
        assert!(st.max < 2.6, "Delaunay stretch {}", st.max);
    }

    #[test]
    fn restricted_delaunay_caps_edge_length() {
        let points = uniform(80, 101);
        let range = 0.3;
        let rdg = restricted_delaunay_graph(&points, range);
        for (_, _, w) in rdg.graph.edges() {
            assert!(w <= range + 1e-12);
        }
        // and it is a subgraph of the full Delaunay graph
        let del = delaunay_graph(&points);
        for (u, v, _) in rdg.graph.edges() {
            assert!(del.graph.has_edge(u, v));
        }
    }

    #[test]
    fn delaunay_can_exceed_any_range() {
        // Two far clusters: the triangulation must bridge them with an
        // edge longer than a unit radio range — the paper's §1.2 caveat.
        let mut points = uniform(10, 103);
        points.extend(uniform(10, 104).iter().map(|p| Point::new(p.x + 50.0, p.y)));
        let del = delaunay_graph(&points);
        assert!(del.max_edge_len() > 1.0);
        assert!(adhoc_graph::is_connected(&del.graph));
    }
}
