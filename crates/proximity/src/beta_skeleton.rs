//! β-skeletons (lune-based).
//!
//! The proof discussion in §2.2 contrasts the topology `𝒩` with
//! "proximity graphs such as the Yao graph, Gabriel graph and some of its
//! variants (such as β-skeletons with β < 1)", whose minimum-cost paths
//! never move away from the target. The lune-based β-skeleton
//! interpolates the classic structures:
//!
//! * `β = 1` — the Gabriel graph;
//! * `β = 2` — the relative neighborhood graph;
//! * `β < 1` — denser graphs whose empty region is the intersection of
//!   two disks of radius `|uv|/(2β)` through `u` and `v`.
//!
//! For `β ≥ 1` the empty region is the union/intersection convention of
//! Kirkpatrick–Radke: we implement the standard *lune-based* variant
//! where the region is the intersection of the two disks of radius
//! `β|uv|/2` centered at `(1−β/2)u + (β/2)v` and symmetrically.

use crate::spatial::SpatialGraph;
use adhoc_geom::{GridIndex, Point};
use adhoc_graph::GraphBuilder;

/// Is point `w` strictly inside the β-lune of `(u, v)`?
///
/// # Panics
/// Panics unless `β > 0`.
pub fn in_beta_lune(u: Point, v: Point, w: Point, beta: f64) -> bool {
    assert!(beta > 0.0, "β must be positive");
    let d = u.dist(v);
    if d == 0.0 {
        return false;
    }
    if beta >= 1.0 {
        // Lune = intersection of disks of radius βd/2 centered at
        // (1−β/2)u + (β/2)v and (1−β/2)v + (β/2)u.
        let r = beta * d / 2.0;
        let c1 = u.lerp(v, beta / 2.0);
        let c2 = v.lerp(u, beta / 2.0);
        w.in_open_disk(c1, r) && w.in_open_disk(c2, r)
    } else {
        // β < 1: intersection of the two disks of radius d/(2β) that
        // pass through both u and v.
        let r = d / (2.0 * beta);
        // Disk centers sit on the perpendicular bisector at distance
        // sqrt(r² − (d/2)²) from the midpoint.
        let mid = u.midpoint(v);
        let h = (r * r - (d / 2.0) * (d / 2.0)).max(0.0).sqrt();
        let dir = u.to(v).normalized().expect("d > 0");
        let perp = adhoc_geom::Vec2::new(-dir.y, dir.x);
        let c1 = mid + perp * h;
        let c2 = mid - perp * h;
        // The endpoints u, v sit exactly on both circles; a relative
        // tolerance keeps boundary points (up to rounding) outside.
        let r_eff = r * (1.0 - 1e-12);
        w.in_open_disk(c1, r_eff) && w.in_open_disk(c2, r_eff)
    }
}

/// The lune-based β-skeleton restricted to edges of length ≤ `range`.
pub fn beta_skeleton(points: &[Point], beta: f64, range: f64) -> SpatialGraph {
    assert!(beta > 0.0, "β must be positive");
    assert!(
        range.is_finite() && range > 0.0,
        "range must be positive, got {range}"
    );
    let n = points.len();
    let mut b = GraphBuilder::new(n);
    if n > 0 {
        let grid = GridIndex::build(points, range);
        // Candidate blockers live within max(r_lune) of the midpoint; the
        // lune is always contained in the disk around the midpoint of
        // radius max(β,1/β)·d.
        for u in 0..n as u32 {
            let pu = points[u as usize];
            grid.for_each_within(pu, range, |v| {
                if v <= u {
                    return;
                }
                let pv = points[v as usize];
                let d = pu.dist(pv);
                let reach = d * beta.max(1.0 / beta);
                let mid = pu.midpoint(pv);
                let mut blocked = false;
                grid.for_each_within(mid, reach, |w| {
                    if w != u && w != v && in_beta_lune(pu, pv, points[w as usize], beta) {
                        blocked = true;
                    }
                });
                if !blocked {
                    b.add_edge(u, v, d);
                }
            });
        }
    }
    SpatialGraph::new(points.to_vec(), b.build(), range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    #[test]
    fn beta_one_is_gabriel() {
        let points = uniform(70, 7);
        let bs = beta_skeleton(&points, 1.0, 10.0);
        let gg = crate::gabriel::gabriel_graph(&points, 10.0);
        assert_eq!(bs.graph, gg.graph);
    }

    #[test]
    fn beta_two_is_rng() {
        let points = uniform(70, 9);
        let bs = beta_skeleton(&points, 2.0, 10.0);
        let rng_g = crate::rng_graph::relative_neighborhood_graph(&points, 10.0);
        assert_eq!(bs.graph, rng_g.graph);
    }

    #[test]
    fn skeletons_nest_with_beta() {
        // Larger β ⇒ bigger empty region ⇒ fewer edges (for β ≥ 1).
        let points = uniform(80, 11);
        let b1 = beta_skeleton(&points, 1.0, 10.0);
        let b15 = beta_skeleton(&points, 1.5, 10.0);
        let b2 = beta_skeleton(&points, 2.0, 10.0);
        for (u, v, _) in b2.graph.edges() {
            assert!(b15.graph.has_edge(u, v));
        }
        for (u, v, _) in b15.graph.edges() {
            assert!(b1.graph.has_edge(u, v));
        }
    }

    #[test]
    fn small_beta_is_denser() {
        let points = uniform(60, 13);
        let dense = beta_skeleton(&points, 0.8, 10.0);
        let gabriel = beta_skeleton(&points, 1.0, 10.0);
        assert!(dense.graph.num_edges() >= gabriel.graph.num_edges());
        for (u, v, _) in gabriel.graph.edges() {
            assert!(dense.graph.has_edge(u, v), "β<1 must contain Gabriel");
        }
    }

    #[test]
    fn lune_membership_geometry() {
        let u = Point::new(0.0, 0.0);
        let v = Point::new(2.0, 0.0);
        // midpoint is inside every lune
        for beta in [0.5, 1.0, 2.0] {
            assert!(in_beta_lune(u, v, Point::new(1.0, 0.0), beta));
        }
        // a point far away never is
        for beta in [0.5, 1.0, 2.0] {
            assert!(!in_beta_lune(u, v, Point::new(10.0, 10.0), beta));
        }
        // endpoint are never strictly inside
        for beta in [0.5, 1.0, 2.0] {
            assert!(!in_beta_lune(u, v, u, beta));
            assert!(!in_beta_lune(u, v, v, beta));
        }
        // β = 1: the lune is the diametral disk
        assert!(in_beta_lune(u, v, Point::new(1.0, 0.9), 1.0));
        assert!(!in_beta_lune(u, v, Point::new(1.0, 1.1), 1.0));
    }

    #[test]
    #[should_panic]
    fn zero_beta_rejected() {
        in_beta_lune(Point::ORIGIN, Point::new(1.0, 0.0), Point::ORIGIN, 0.0);
    }

    #[test]
    fn respects_range() {
        let points = uniform(50, 15);
        let bs = beta_skeleton(&points, 1.0, 0.2);
        for (_, _, w) in bs.graph.edges() {
            assert!(w <= 0.2 + 1e-12);
        }
    }

    #[test]
    fn empty_input() {
        assert!(beta_skeleton(&[], 1.0, 1.0).is_empty());
    }
}
