//! The k-nearest-neighbor graph.
//!
//! The paper's introduction singles this structure out as the cautionary
//! baseline: "just connecting each node to its closest k neighbors may
//! provide energy-efficient routes but does *not* guarantee connectivity
//! or a constant degree per node." Experiment E1 demonstrates both
//! failure modes empirically.

use crate::spatial::SpatialGraph;
use adhoc_geom::{GridIndex, Point};
use adhoc_graph::GraphBuilder;

/// Undirected kNN graph: `u — v` iff `v` is among the `k` nearest in-range
/// neighbors of `u`, or vice versa. Ties broken by node id.
pub fn knn_graph(points: &[Point], k: usize, range: f64) -> SpatialGraph {
    assert!(
        range.is_finite() && range > 0.0,
        "range must be positive, got {range}"
    );
    let n = points.len();
    let mut b = GraphBuilder::new(n);
    if n > 0 && k > 0 {
        let grid = GridIndex::build(points, range);
        // Workhorse candidate buffer reused across nodes.
        let mut cands: Vec<(f64, u32)> = Vec::new();
        for u in 0..n as u32 {
            cands.clear();
            let pu = points[u as usize];
            grid.for_each_within(pu, range, |v| {
                if v != u {
                    cands.push((pu.dist_sq(points[v as usize]), v));
                }
            });
            cands.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
            for &(_, v) in cands.iter().take(k) {
                b.add_edge(u, v, pu.dist(points[v as usize]));
            }
        }
    }
    SpatialGraph::new(points.to_vec(), b.build(), range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_graph::is_connected;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn naive_knn(points: &[Point], k: usize, range: f64) -> Vec<(u32, u32)> {
        let n = points.len();
        let mut set = std::collections::BTreeSet::new();
        for u in 0..n {
            let mut cands: Vec<(f64, u32)> = (0..n)
                .filter(|&v| v != u && points[u].dist(points[v]) <= range)
                .map(|v| (points[u].dist_sq(points[v]), v as u32))
                .collect();
            cands.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
            for &(_, v) in cands.iter().take(k) {
                let (a, b) = (u as u32, v);
                set.insert(if a < b { (a, b) } else { (b, a) });
            }
        }
        set.into_iter().collect()
    }

    #[test]
    fn matches_naive_oracle() {
        let points = uniform(90, 71);
        for k in [1, 3, 5] {
            let g = knn_graph(&points, k, 0.5);
            let mut got: Vec<(u32, u32)> = g.graph.edges().map(|(u, v, _)| (u, v)).collect();
            got.sort_unstable();
            let want = naive_knn(&points, k, 0.5);
            assert_eq!(got, want, "k={k}");
        }
    }

    #[test]
    fn k_zero_is_empty() {
        let points = uniform(20, 2);
        let g = knn_graph(&points, 0, 1.0);
        assert_eq!(g.graph.num_edges(), 0);
    }

    #[test]
    fn knn_can_disconnect() {
        // Two tight clusters far apart but within range: 1-NN links stay
        // inside each cluster, so the graph is disconnected even though
        // the UDG is connected. This is the paper's intro counterexample.
        let mut points = Vec::new();
        for i in 0..5 {
            points.push(Point::new(0.0, i as f64 * 0.01));
            points.push(Point::new(0.9, i as f64 * 0.01));
        }
        let g = knn_graph(&points, 1, 1.0);
        assert!(!is_connected(&g.graph));
        // ...while the UDG at the same range IS connected.
        let udg = crate::udg::unit_disk_graph(&points, 1.0);
        assert!(is_connected(&udg.graph));
    }

    #[test]
    fn degree_can_exceed_k() {
        // A hub with satellites spread 72° apart: adjacent satellites are
        // 2·sin 36° ≈ 1.18 apart, farther than the hub at distance 1, so
        // every satellite's 1-NN is the hub and the hub's undirected degree
        // is n-1 = 5 despite k = 1.
        let mut points = vec![Point::new(0.0, 0.0)];
        for i in 0..5 {
            let a = i as f64 / 5.0 * std::f64::consts::TAU;
            points.push(Point::new(a.cos(), a.sin()));
        }
        let g = knn_graph(&points, 1, 2.5);
        assert_eq!(g.graph.degree(0), 5);
    }

    #[test]
    fn empty_input() {
        assert!(knn_graph(&[], 3, 1.0).is_empty());
    }
}
