//! The relative neighborhood graph (RNG).
//!
//! Edge `(u, v)` is present iff there is no third node `w` with
//! `max(|uw|, |vw|) < |uv|` (no node strictly inside the "lune" of `u` and
//! `v`). Sparser than the Gabriel graph; the paper notes it has only
//! *polynomial* energy-stretch, making it a useful contrast baseline.

use crate::spatial::SpatialGraph;
use adhoc_geom::{GridIndex, Point};
use adhoc_graph::GraphBuilder;

/// RNG restricted to edges of length at most `range`.
pub fn relative_neighborhood_graph(points: &[Point], range: f64) -> SpatialGraph {
    assert!(
        range.is_finite() && range > 0.0,
        "range must be positive, got {range}"
    );
    let n = points.len();
    let mut b = GraphBuilder::new(n);
    if n > 0 {
        let grid = GridIndex::build(points, range);
        for u in 0..n as u32 {
            let pu = points[u as usize];
            grid.for_each_within(pu, range, |v| {
                if v <= u {
                    return;
                }
                let pv = points[v as usize];
                let d = pu.dist(pv);
                // Lune test: any w (≠ u,v) with |uw| < d AND |vw| < d blocks.
                let mut blocked = false;
                grid.for_each_within(pu, d, |w| {
                    if w != u && w != v {
                        let pw = points[w as usize];
                        if pw.dist(pu) < d && pw.dist(pv) < d {
                            blocked = true;
                        }
                    }
                });
                if !blocked {
                    b.add_edge(u, v, d);
                }
            });
        }
    }
    SpatialGraph::new(points.to_vec(), b.build(), range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn naive_rng(points: &[Point], range: f64) -> Vec<(u32, u32)> {
        let n = points.len();
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                let d = points[u].dist(points[v]);
                if d > range {
                    continue;
                }
                let blocked = (0..n).any(|w| {
                    w != u
                        && w != v
                        && points[w].dist(points[u]) < d
                        && points[w].dist(points[v]) < d
                });
                if !blocked {
                    edges.push((u as u32, v as u32));
                }
            }
        }
        edges
    }

    #[test]
    fn matches_naive_oracle() {
        let points = uniform(90, 43);
        for range in [0.3, 10.0] {
            let g = relative_neighborhood_graph(&points, range);
            let mut got: Vec<(u32, u32)> = g.graph.edges().map(|(u, v, _)| (u, v)).collect();
            got.sort_unstable();
            let mut want = naive_rng(&points, range);
            want.sort_unstable();
            assert_eq!(got, want, "range {range}");
        }
    }

    #[test]
    fn lune_blocking() {
        // w equidistant-ish between u and v blocks the long edge.
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 0.5),
        ];
        let g = relative_neighborhood_graph(&points, 10.0);
        assert!(!g.graph.has_edge(0, 1));
        assert!(g.graph.has_edge(0, 2) && g.graph.has_edge(2, 1));
    }

    #[test]
    fn tall_isoceles_keeps_all_edges() {
        // Apex clearly farther from each base vertex than the base length:
        // no vertex lies strictly inside another pair's lune, so the RNG
        // keeps all three edges. (An *exactly* equilateral triangle sits on
        // the strict-inequality boundary and is decided by floating-point
        // rounding, so we test a configuration with real margins.)
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 1.2),
        ];
        let g = relative_neighborhood_graph(&points, 10.0);
        assert_eq!(g.graph.num_edges(), 3);
    }

    #[test]
    fn rng_subset_of_gabriel() {
        let points = uniform(80, 45);
        let g = relative_neighborhood_graph(&points, 10.0);
        let gg = crate::gabriel::gabriel_graph(&points, 10.0);
        for (u, v, _) in g.graph.edges() {
            assert!(gg.graph.has_edge(u, v));
        }
        assert!(g.graph.num_edges() <= gg.graph.num_edges());
    }

    #[test]
    fn connected_at_full_range() {
        let points = uniform(70, 47);
        let g = relative_neighborhood_graph(&points, 10.0);
        assert!(adhoc_graph::is_connected(&g.graph));
    }

    #[test]
    fn empty() {
        assert!(relative_neighborhood_graph(&[], 1.0).is_empty());
    }
}
