//! The Gabriel graph.
//!
//! Edge `(u, v)` is present iff the open disk with diameter `uv` contains
//! no other node. For the `|uv|^κ` energy model with `κ ≥ 2`, the Gabriel
//! graph contains a minimum-energy path between every pair of nodes
//! (paper §1.2: "a Gabriel graph, by definition, has shortest paths with
//! respect to the ℓ₂-norm and hence has optimal energy paths"). We use it
//! as the energy-stretch = 1.0 reference in experiment E2. Its drawback —
//! and the reason the paper needs ΘALG — is worst-case degree `Ω(n)`.

use crate::spatial::SpatialGraph;
use adhoc_geom::{GridIndex, Point};
use adhoc_graph::GraphBuilder;

/// Gabriel graph restricted to edges of length at most `range`
/// (the "restricted Gabriel graph" appropriate for radios with maximum
/// transmission range `D`).
pub fn gabriel_graph(points: &[Point], range: f64) -> SpatialGraph {
    assert!(
        range.is_finite() && range > 0.0,
        "range must be positive, got {range}"
    );
    let n = points.len();
    let mut b = GraphBuilder::new(n);
    if n > 0 {
        let grid = GridIndex::build(points, range);
        for u in 0..n as u32 {
            let pu = points[u as usize];
            grid.for_each_within(pu, range, |v| {
                if v <= u {
                    return;
                }
                let pv = points[v as usize];
                let mid = pu.midpoint(pv);
                let radius = 0.5 * pu.dist(pv);
                // Gabriel test: no third node strictly inside C(mid, |uv|/2).
                let mut blocked = false;
                grid.for_each_within(mid, radius, |w| {
                    if w != u && w != v && points[w as usize].in_open_disk(mid, radius) {
                        blocked = true;
                    }
                });
                if !blocked {
                    b.add_edge(u, v, pu.dist(pv));
                }
            });
        }
    }
    SpatialGraph::new(points.to_vec(), b.build(), range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn naive_gabriel(points: &[Point], range: f64) -> Vec<(u32, u32)> {
        let n = points.len();
        let mut edges = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                if points[u].dist(points[v]) > range {
                    continue;
                }
                let mid = points[u].midpoint(points[v]);
                let r = 0.5 * points[u].dist(points[v]);
                let blocked = (0..n).any(|w| w != u && w != v && points[w].in_open_disk(mid, r));
                if !blocked {
                    edges.push((u as u32, v as u32));
                }
            }
        }
        edges
    }

    #[test]
    fn matches_naive_oracle() {
        let points = uniform(100, 41);
        for range in [0.3, 10.0] {
            let gg = gabriel_graph(&points, range);
            let mut got: Vec<(u32, u32)> = gg.graph.edges().map(|(u, v, _)| (u, v)).collect();
            got.sort_unstable();
            let mut want = naive_gabriel(&points, range);
            want.sort_unstable();
            assert_eq!(got, want, "range {range}");
        }
    }

    #[test]
    fn blocking_point_removes_edge() {
        // Midpoint of (0,0)-(2,0) blocked by (1, 0.1).
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 0.1),
        ];
        let gg = gabriel_graph(&points, 10.0);
        assert!(!gg.graph.has_edge(0, 1));
        assert!(gg.graph.has_edge(0, 2));
        assert!(gg.graph.has_edge(2, 1));
    }

    #[test]
    fn point_on_circle_does_not_block() {
        // (1,1) is ON the circle with diameter (0,0)-(2,0)? |mid-(1,1)| = 1
        // = radius: boundary, open disk excludes it.
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 1.0),
        ];
        let gg = gabriel_graph(&points, 10.0);
        assert!(gg.graph.has_edge(0, 1));
    }

    #[test]
    fn gabriel_has_optimal_energy_paths() {
        // Energy-stretch of the Gabriel graph vs the complete graph is 1
        // for κ = 2 (it contains an optimal-energy path for each pair).
        use crate::udg::unit_disk_graph;
        use adhoc_graph::pairwise_stretch;
        let points = uniform(60, 55);
        let range = 10.0;
        let gg = gabriel_graph(&points, range);
        let full = unit_disk_graph(&points, range);
        let st = pairwise_stretch(&gg.energy_graph(2.0), &full.energy_graph(2.0));
        assert!(st.connectivity_preserved());
        assert!(
            (st.max - 1.0).abs() < 1e-9,
            "Gabriel energy-stretch should be 1.0, got {}",
            st.max
        );
    }

    #[test]
    fn connected_at_full_range() {
        let points = uniform(80, 61);
        let gg = gabriel_graph(&points, 10.0);
        assert!(adhoc_graph::is_connected(&gg.graph));
    }

    #[test]
    fn empty_and_small() {
        assert!(gabriel_graph(&[], 1.0).is_empty());
        let two = gabriel_graph(&[Point::new(0.0, 0.0), Point::new(0.5, 0.0)], 1.0);
        assert_eq!(two.graph.num_edges(), 1);
    }
}
