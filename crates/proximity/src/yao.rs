//! The Yao graph (θ-graph) — the phase-1 graph `𝒩₁` of ΘALG.
//!
//! Each node `u` partitions the directions around itself into sectors of
//! angle `θ` and selects the **nearest** node in each sector (among nodes
//! within transmission range). `𝒩₁` is the undirected union of these
//! choices. The paper (§2.1) notes `𝒩₁` is a spanner with `O(1)`
//! energy-stretch but worst-case degree `Ω(n)` — which is exactly what the
//! second phase of ΘALG (in `adhoc-core`) fixes.
//!
//! Ties in distance are broken by node id, which discharges the paper's
//! "all pairwise distances are unique" assumption constructively.

use crate::spatial::SpatialGraph;
use adhoc_geom::{GridIndex, Point, SectorPartition};
use adhoc_graph::{GraphBuilder, NodeId};

/// For every node `u`, the nearest in-range neighbor in each of `u`'s
/// sectors: `out[u]` holds one `NodeId` per *non-empty* sector, i.e. the
/// directed Yao edges `u → v`. This is the paper's `N(u)`.
///
/// Runs a grid-accelerated ring search per node, falling back to scanning
/// all in-range neighbors.
pub fn yao_out_neighbors(
    points: &[Point],
    sectors: SectorPartition,
    range: f64,
) -> Vec<Vec<NodeId>> {
    assert!(
        range.is_finite() && range > 0.0,
        "range must be positive, got {range}"
    );
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let grid = GridIndex::build(points, range);
    let k = sectors.count() as usize;
    let mut out = vec![Vec::new(); n];
    // Workhorse per-sector best buffer, reused across nodes.
    let mut best: Vec<Option<(f64, NodeId)>> = vec![None; k];
    for u in 0..n as NodeId {
        for b in best.iter_mut() {
            *b = None;
        }
        let pu = points[u as usize];
        grid.for_each_within(pu, range, |v| {
            if v == u {
                return;
            }
            let pv = points[v as usize];
            let s = sectors.sector_of(pu, pv) as usize;
            let d = pu.dist_sq(pv);
            let better = match best[s] {
                None => true,
                // Tie-break by id for determinism on equal distances.
                Some((bd, bv)) => d < bd || (d == bd && v < bv),
            };
            if better {
                best[s] = Some((d, v));
            }
        });
        out[u as usize] = best.iter().filter_map(|b| b.map(|(_, v)| v)).collect();
    }
    out
}

/// The undirected Yao graph `𝒩₁` with Euclidean edge weights.
pub fn yao_graph(points: &[Point], sectors: SectorPartition, range: f64) -> SpatialGraph {
    let out = yao_out_neighbors(points, sectors, range);
    let mut b = GraphBuilder::new(points.len());
    for (u, targets) in out.iter().enumerate() {
        for &v in targets {
            b.add_edge(u as NodeId, v, points[u].dist(points[v as usize]));
        }
    }
    SpatialGraph::new(points.to_vec(), b.build(), range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_graph::is_connected;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    use std::f64::consts::FRAC_PI_3;

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn sectors6() -> SectorPartition {
        SectorPartition::with_max_angle(FRAC_PI_3)
    }

    /// Naive O(n² k) oracle for the directed Yao choice.
    fn naive_out(points: &[Point], sectors: SectorPartition, range: f64) -> Vec<Vec<NodeId>> {
        let n = points.len();
        let mut out = vec![Vec::new(); n];
        for u in 0..n {
            let mut best: Vec<Option<(f64, NodeId)>> = vec![None; sectors.count() as usize];
            for v in 0..n {
                if u == v || points[u].dist(points[v]) > range {
                    continue;
                }
                let s = sectors.sector_of(points[u], points[v]) as usize;
                let d = points[u].dist_sq(points[v]);
                let better = match best[s] {
                    None => true,
                    Some((bd, bv)) => d < bd || (d == bd && (v as NodeId) < bv),
                };
                if better {
                    best[s] = Some((d, v as NodeId));
                }
            }
            out[u] = best.iter().filter_map(|b| b.map(|(_, v)| v)).collect();
        }
        out
    }

    #[test]
    fn matches_naive_oracle() {
        let points = uniform(150, 17);
        let range = 0.35;
        let fast = yao_out_neighbors(&points, sectors6(), range);
        let slow = naive_out(&points, sectors6(), range);
        assert_eq!(fast, slow);
    }

    #[test]
    fn out_degree_at_most_sector_count() {
        let points = uniform(200, 5);
        let out = yao_out_neighbors(&points, sectors6(), 10.0);
        for targets in &out {
            assert!(targets.len() <= 6);
        }
    }

    #[test]
    fn connected_when_udg_connected() {
        // With full range the UDG is complete, so 𝒩₁ must be connected
        // (standard Yao-graph property).
        let points = uniform(100, 9);
        let yao = yao_graph(&points, sectors6(), 10.0);
        assert!(is_connected(&yao.graph));
    }

    #[test]
    fn edges_within_range() {
        let points = uniform(100, 11);
        let range = 0.3;
        let yao = yao_graph(&points, sectors6(), range);
        for (_, _, w) in yao.graph.edges() {
            assert!(w <= range + 1e-12);
        }
    }

    #[test]
    fn nearest_neighbor_edge_always_present() {
        // The global nearest neighbor of u lies in some sector of u, so the
        // edge to it is always a Yao edge.
        let points = uniform(80, 23);
        let yao = yao_graph(&points, sectors6(), 10.0);
        for u in 0..points.len() {
            let nn = (0..points.len())
                .filter(|&v| v != u)
                .min_by(|&a, &b| {
                    points[u]
                        .dist_sq(points[a])
                        .partial_cmp(&points[u].dist_sq(points[b]))
                        .unwrap()
                })
                .unwrap();
            assert!(
                yao.graph.has_edge(u as u32, nn as u32),
                "nearest-neighbor edge ({u},{nn}) missing"
            );
        }
    }

    #[test]
    fn ring_center_has_high_yao_degree() {
        // Classic Ω(n) degree example: many nodes on a circle all pick the
        // center as the nearest node in their sector pointing at it — but
        // the *center* only picks 6. The undirected union still gives the
        // center high degree.
        let n = 64;
        let mut points = vec![Point::new(0.0, 0.0)];
        for i in 0..n {
            let a = i as f64 / n as f64 * std::f64::consts::TAU;
            // radius slightly varying so distances are distinct
            let r = 1.0 + 1e-6 * i as f64;
            points.push(Point::new(r * a.cos(), r * a.sin()));
        }
        let yao = yao_graph(&points, sectors6(), 10.0);
        // Ring nodes are ~0.098 apart adjacent; the center at distance ~1
        // is picked only by nodes whose sector toward the center contains
        // no closer ring node. Still, the center's degree exceeds its own
        // out-degree bound of 6 because incoming selections pile up.
        assert!(yao.graph.degree(0) >= 6);
    }

    #[test]
    fn empty_input() {
        assert!(yao_out_neighbors(&[], sectors6(), 1.0).is_empty());
        let g = yao_graph(&[], sectors6(), 1.0);
        assert!(g.is_empty());
    }

    #[test]
    fn two_points_single_edge() {
        let points = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)];
        let yao = yao_graph(&points, sectors6(), 1.0);
        assert_eq!(yao.graph.num_edges(), 1);
        assert!(yao.graph.has_edge(0, 1));
    }

    #[test]
    fn out_of_range_pair_not_connected() {
        let points = vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)];
        let yao = yao_graph(&points, sectors6(), 1.0);
        assert_eq!(yao.graph.num_edges(), 0);
    }
}
