//! The transmission graph `G*` (unit-disk graph with maximum range `D`).
//!
//! Paper §2: "`G* = (V, E)` contains an edge between two nodes `u` and `v`
//! if they can directly communicate with each other", i.e. `|uv| ≤ D`.

use crate::spatial::SpatialGraph;
use adhoc_geom::{GridIndex, Point};
use adhoc_graph::GraphBuilder;

/// Build `G*`: every pair of nodes within `range` is connected, with the
/// Euclidean length as the edge weight. Grid-accelerated (expected
/// near-linear for bounded-density inputs).
///
/// # Panics
/// Panics unless `range` is positive and finite.
pub fn unit_disk_graph(points: &[Point], range: f64) -> SpatialGraph {
    assert!(
        range.is_finite() && range > 0.0,
        "range must be positive, got {range}"
    );
    let n = points.len();
    let mut b = GraphBuilder::new(n);
    if n > 0 {
        let grid = GridIndex::build(points, range);
        for u in 0..n as u32 {
            grid.for_each_within(points[u as usize], range, |v| {
                // Emit each undirected pair once; distinct indices with
                // coincident coordinates are still distinct nodes but would
                // create zero-length edges, which we keep (cost 0).
                if v > u {
                    b.add_edge(u, v, points[u as usize].dist(points[v as usize]));
                }
            });
        }
    }
    SpatialGraph::new(points.to_vec(), b.build(), range)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn matches_brute_force() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let points: Vec<Point> = (0..120)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let range = 0.22;
        let udg = unit_disk_graph(&points, range);
        let mut expected = 0usize;
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                let within = points[i].dist(points[j]) <= range;
                assert_eq!(
                    udg.graph.has_edge(i as u32, j as u32),
                    within,
                    "pair ({i},{j})"
                );
                expected += within as usize;
            }
        }
        assert_eq!(udg.graph.num_edges(), expected);
    }

    #[test]
    fn weights_are_distances() {
        let points = vec![Point::new(0.0, 0.0), Point::new(0.3, 0.4)];
        let udg = unit_disk_graph(&points, 1.0);
        assert!((udg.graph.edge_weight(0, 1).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(unit_disk_graph(&[], 1.0).is_empty());
        let one = unit_disk_graph(&[Point::ORIGIN], 1.0);
        assert_eq!(one.len(), 1);
        assert_eq!(one.graph.num_edges(), 0);
    }

    #[test]
    fn boundary_distance_included() {
        let points = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let udg = unit_disk_graph(&points, 1.0);
        assert!(udg.graph.has_edge(0, 1)); // |uv| = D counts as connected
    }

    #[test]
    #[should_panic]
    fn zero_range_panics() {
        unit_disk_graph(&[Point::ORIGIN], 0.0);
    }

    #[test]
    fn coincident_points_connected_at_zero_cost() {
        let points = vec![Point::new(0.5, 0.5), Point::new(0.5, 0.5)];
        let udg = unit_disk_graph(&points, 0.1);
        assert_eq!(udg.graph.edge_weight(0, 1), Some(0.0));
    }
}
