//! Maximum flow (Dinic's algorithm).
//!
//! Used by the experiment harness to compute *information-theoretic
//! throughput upper bounds*: the per-step packet flow any routing
//! algorithm can push from sources to a sink is at most the min cut of
//! the topology with unit edge capacities. Comparing measured balancing
//! throughput against this bound turns "competitive against
//! OPT-by-construction" into "competitive against a certified ceiling".

/// A directed flow network on `n` nodes.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// head node of each arc
    to: Vec<u32>,
    /// residual capacity of each arc
    cap: Vec<f64>,
    /// adjacency: arc ids per node
    adj: Vec<Vec<u32>>,
}

impl FlowNetwork {
    /// Empty network on `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            to: Vec::new(),
            cap: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Add a directed arc `u → v` with capacity `c` (and its residual
    /// reverse arc of capacity 0).
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or negative/NaN capacity.
    pub fn add_arc(&mut self, u: u32, v: u32, c: f64) {
        assert!(
            (u as usize) < self.adj.len() && (v as usize) < self.adj.len(),
            "arc ({u},{v}) out of range"
        );
        assert!(c.is_finite() && c >= 0.0, "invalid capacity {c}");
        let id = self.to.len() as u32;
        self.to.push(v);
        self.cap.push(c);
        self.adj[u as usize].push(id);
        self.to.push(u);
        self.cap.push(0.0);
        self.adj[v as usize].push(id + 1);
    }

    /// Add an undirected edge as two arcs of capacity `c` each.
    pub fn add_undirected(&mut self, u: u32, v: u32, c: f64) {
        self.add_arc(u, v, c);
        self.add_arc(v, u, c);
    }

    fn bfs_levels(&self, s: u32, t: u32) -> Option<Vec<i32>> {
        let mut level = vec![-1i32; self.adj.len()];
        let mut queue = std::collections::VecDeque::new();
        level[s as usize] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &a in &self.adj[u as usize] {
                let v = self.to[a as usize];
                if self.cap[a as usize] > 1e-12 && level[v as usize] < 0 {
                    level[v as usize] = level[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        (level[t as usize] >= 0).then_some(level)
    }

    fn dfs_push(&mut self, u: u32, t: u32, pushed: f64, level: &[i32], it: &mut [usize]) -> f64 {
        if u == t {
            return pushed;
        }
        while it[u as usize] < self.adj[u as usize].len() {
            let a = self.adj[u as usize][it[u as usize]] as usize;
            let v = self.to[a];
            if self.cap[a] > 1e-12 && level[v as usize] == level[u as usize] + 1 {
                let d = self.dfs_push(v, t, pushed.min(self.cap[a]), level, it);
                if d > 1e-12 {
                    self.cap[a] -= d;
                    self.cap[a ^ 1] += d;
                    return d;
                }
            }
            it[u as usize] += 1;
        }
        0.0
    }

    /// Max flow from `s` to `t` (destroys residual capacities).
    pub fn max_flow(&mut self, s: u32, t: u32) -> f64 {
        assert_ne!(s, t, "source equals sink");
        let mut flow = 0.0;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut it = vec![0usize; self.adj.len()];
            loop {
                let pushed = self.dfs_push(s, t, f64::INFINITY, &level, &mut it);
                if pushed <= 1e-12 {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }
}

/// Min-cut (= max-flow) between `s` and `t` in an undirected graph with
/// the given per-edge capacity.
pub fn min_cut_undirected(
    num_nodes: usize,
    edges: impl Iterator<Item = (u32, u32, f64)>,
    s: u32,
    t: u32,
) -> f64 {
    let mut net = FlowNetwork::new(num_nodes);
    for (u, v, c) in edges {
        net.add_undirected(u, v, c);
    }
    net.max_flow(s, t)
}

/// Multi-source min-cut: the max simultaneous unit-capacity flow from the
/// source set into `t` (adds a super-source).
pub fn multi_source_min_cut(
    num_nodes: usize,
    edges: impl Iterator<Item = (u32, u32, f64)>,
    sources: &[u32],
    t: u32,
) -> f64 {
    let super_s = num_nodes as u32;
    let mut net = FlowNetwork::new(num_nodes + 1);
    let mut total_cap = 1.0;
    for (u, v, c) in edges {
        net.add_undirected(u, v, c);
        total_cap += 2.0 * c;
    }
    // "Unbounded" source arcs: any finite value above the total edge
    // capacity can never be the bottleneck.
    for &s in sources {
        net.add_arc(super_s, s, total_cap);
    }
    net.max_flow(super_s, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 3.5);
        assert_eq!(net.max_flow(0, 1), 3.5);
    }

    #[test]
    fn classic_diamond() {
        //    1
        //  /   \
        // 0     3    two disjoint unit paths ⇒ flow 2
        //  \   /
        //    2
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1.0);
        net.add_arc(0, 2, 1.0);
        net.add_arc(1, 3, 1.0);
        net.add_arc(2, 3, 1.0);
        assert!((net.max_flow(0, 3) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_respected() {
        // 0 →(5)→ 1 →(1)→ 2: flow limited to 1.
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 5.0);
        net.add_arc(1, 2, 1.0);
        assert!((net.max_flow(0, 2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_is_zero() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 1.0);
        assert_eq!(net.max_flow(0, 2), 0.0);
    }

    #[test]
    fn undirected_edges_carry_both_ways() {
        let f = min_cut_undirected(3, [(0u32, 1u32, 1.0), (1, 2, 1.0)].into_iter(), 2, 0);
        assert!((f - 1.0).abs() < 1e-9);
    }

    #[test]
    fn min_cut_matches_enumeration_on_small_graphs() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..20 {
            let n = rng.gen_range(3..7usize);
            let mut edges: Vec<(u32, u32, f64)> = Vec::new();
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.6) {
                        edges.push((u, v, rng.gen_range(0.5..3.0)));
                    }
                }
            }
            let flow = min_cut_undirected(n, edges.iter().copied(), 0, n as u32 - 1);
            // Enumerate all s-t cuts.
            let mut best = f64::INFINITY;
            for mask in 0u32..(1 << n) {
                if mask & 1 == 0 || mask & (1 << (n - 1)) != 0 {
                    continue; // s must be inside, t outside
                }
                let cut: f64 = edges
                    .iter()
                    .filter(|&&(u, v, _)| (mask >> u) & 1 != (mask >> v) & 1)
                    .map(|&(_, _, c)| c)
                    .sum();
                best = best.min(cut);
            }
            assert!(
                (flow - best).abs() < 1e-6,
                "flow {flow} vs min cut {best} on {edges:?}"
            );
        }
    }

    #[test]
    fn multi_source_aggregates() {
        // Two sources, each with a unit path to t.
        let edges = [(0u32, 2u32, 1.0), (1, 2, 1.0)];
        let f = multi_source_min_cut(3, edges.into_iter(), &[0, 1], 2);
        assert!((f - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn same_source_sink_panics() {
        FlowNetwork::new(2).max_flow(0, 0);
    }

    #[test]
    #[should_panic]
    fn bad_capacity_panics() {
        FlowNetwork::new(2).add_arc(0, 1, -1.0);
    }
}
