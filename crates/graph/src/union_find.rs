//! Disjoint-set union with path halving and union by size.

/// Union-find over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.components -= 1;
        true
    }

    /// Are `a` and `b` in the same set?
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets remaining.
    pub fn num_components(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: u32) -> usize {
        let r = self.find(x);
        self.size[r as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.num_components(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.component_size(2), 1);
    }

    #[test]
    fn union_merges() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0)); // already merged
        assert_eq!(uf.num_components(), 2);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 3));
        assert_eq!(uf.num_components(), 1);
        assert!(uf.connected(0, 2));
        assert_eq!(uf.component_size(0), 4);
    }

    #[test]
    fn transitive_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.num_components(), 1);
        assert!(uf.connected(0, 99));
        assert_eq!(uf.component_size(50), 100);
    }

    #[test]
    fn empty_ok() {
        let uf = UnionFind::new(0);
        assert_eq!(uf.num_components(), 0);
    }
}
