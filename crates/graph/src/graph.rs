//! Compact undirected weighted graph.
//!
//! Built once from an edge list via [`GraphBuilder`], then immutable: a CSR
//! (compressed sparse row) adjacency layout — one contiguous `offsets`
//! array and one contiguous `targets` array — which is both cache-friendly
//! for the Dijkstra-heavy analysis kernels and trivially shareable across
//! rayon workers.

use serde::{Deserialize, Serialize};

/// Node identifier. `u32` keeps adjacency entries at 12 bytes.
pub type NodeId = u32;

/// An adjacency entry: neighbor id plus edge weight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Adj {
    pub to: NodeId,
    pub weight: f64,
}

/// Immutable undirected weighted graph in CSR layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    offsets: Vec<u32>,
    adj: Vec<Adj>,
    num_edges: usize,
}

impl Graph {
    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Neighbors of `u` with edge weights.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[Adj] {
        let lo = self.offsets[u as usize] as usize;
        let hi = self.offsets[u as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.neighbors(u).len()
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes() as NodeId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Weight of edge `(u, v)` if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        self.neighbors(u)
            .iter()
            .find(|a| a.to == v)
            .map(|a| a.weight)
    }

    /// True iff the edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Iterate over each undirected edge once, as `(u, v, w)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, f64)> + '_ {
        (0..self.num_nodes() as NodeId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |a| u < a.to)
                .map(move |a| (u, a.to, a.weight))
        })
    }

    /// Total weight of all undirected edges.
    pub fn total_weight(&self) -> f64 {
        self.edges().map(|(_, _, w)| w).sum()
    }

    /// Build a graph with the same nodes but only the edges accepted by the
    /// predicate.
    pub fn filter_edges<F: FnMut(NodeId, NodeId, f64) -> bool>(&self, mut keep: F) -> Graph {
        let mut b = GraphBuilder::new(self.num_nodes());
        for (u, v, w) in self.edges() {
            if keep(u, v, w) {
                b.add_edge(u, v, w);
            }
        }
        b.build()
    }

    /// Re-weight every edge through `f(u, v, old_weight)`.
    pub fn map_weights<F: FnMut(NodeId, NodeId, f64) -> f64>(&self, mut f: F) -> Graph {
        let mut b = GraphBuilder::new(self.num_nodes());
        for (u, v, w) in self.edges() {
            b.add_edge(u, v, f(u, v, w));
        }
        b.build()
    }
}

/// Mutable edge-list accumulator that freezes into a [`Graph`].
///
/// Duplicate insertions of the same undirected edge keep the *minimum*
/// weight (the natural semantics for cost graphs).
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_nodes: usize,
    edges: Vec<(NodeId, NodeId, f64)>,
}

impl GraphBuilder {
    /// Builder for a graph on `num_nodes` nodes (ids `0..num_nodes`).
    pub fn new(num_nodes: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Builder with pre-reserved edge capacity.
    pub fn with_capacity(num_nodes: usize, edges: usize) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::with_capacity(edges),
        }
    }

    /// Number of nodes this builder targets.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Add undirected edge `(u, v)` with weight `w`.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range endpoints, or non-finite /
    /// negative weights — all of these indicate bugs upstream.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: f64) {
        assert!(u != v, "self-loop on node {u}");
        assert!(
            (u as usize) < self.num_nodes && (v as usize) < self.num_nodes,
            "edge ({u},{v}) out of range for {} nodes",
            self.num_nodes
        );
        assert!(w.is_finite() && w >= 0.0, "invalid edge weight {w}");
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, w));
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True iff no edges were added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Freeze into an immutable CSR [`Graph`], deduplicating parallel edges
    /// (keeping the minimum weight).
    pub fn build(mut self) -> Graph {
        // Dedup parallel edges, keep min weight.
        self.edges.sort_unstable_by(|a, b| {
            (a.0, a.1)
                .cmp(&(b.0, b.1))
                .then(a.2.partial_cmp(&b.2).expect("finite weights"))
        });
        self.edges.dedup_by(|next, prev| {
            // retain `prev` (smaller weight due to sort) when keys equal
            next.0 == prev.0 && next.1 == prev.1
        });
        let num_edges = self.edges.len();

        // Counting-sort CSR build over both directions.
        let n = self.num_nodes;
        let mut counts = vec![0u32; n + 1];
        for &(u, v, _) in &self.edges {
            counts[u as usize + 1] += 1;
            counts[v as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut adj = vec![Adj { to: 0, weight: 0.0 }; 2 * num_edges];
        for &(u, v, w) in &self.edges {
            adj[cursor[u as usize] as usize] = Adj { to: v, weight: w };
            cursor[u as usize] += 1;
            adj[cursor[v as usize] as usize] = Adj { to: u, weight: w };
            cursor[v as usize] += 1;
        }

        Graph {
            offsets,
            adj,
            num_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 2.0);
        b.add_edge(2, 0, 3.0);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let g = triangle();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn neighbors_and_weights() {
        let g = triangle();
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(1, 0), Some(1.0));
        assert_eq!(g.edge_weight(1, 2), Some(2.0));
        assert_eq!(g.edge_weight(0, 0), None);
        assert!(g.has_edge(2, 0));
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn edges_iterator_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v, _) in &edges {
            assert!(u < v);
        }
        assert!((g.total_weight() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes() {
        let g = GraphBuilder::new(5).build();
        assert_eq!(g.num_nodes(), 5);
        for u in 0..5 {
            assert_eq!(g.degree(u), 0);
        }
    }

    #[test]
    fn duplicate_edges_keep_min_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 5.0);
        b.add_edge(1, 0, 2.0);
        b.add_edge(0, 1, 9.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
    }

    #[test]
    #[should_panic]
    fn self_loop_panics() {
        GraphBuilder::new(2).add_edge(1, 1, 1.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        GraphBuilder::new(2).add_edge(0, 2, 1.0);
    }

    #[test]
    #[should_panic]
    fn nan_weight_panics() {
        GraphBuilder::new(2).add_edge(0, 1, f64::NAN);
    }

    #[test]
    #[should_panic]
    fn negative_weight_panics() {
        GraphBuilder::new(2).add_edge(0, 1, -1.0);
    }

    #[test]
    fn filter_edges_keeps_subset() {
        let g = triangle();
        let h = g.filter_edges(|_, _, w| w < 2.5);
        assert_eq!(h.num_edges(), 2);
        assert!(h.has_edge(0, 1) && h.has_edge(1, 2) && !h.has_edge(0, 2));
        assert_eq!(h.num_nodes(), 3);
    }

    #[test]
    fn map_weights_transforms() {
        let g = triangle();
        let h = g.map_weights(|_, _, w| w * w);
        assert_eq!(h.edge_weight(2, 0), Some(9.0));
        assert_eq!(h.num_edges(), 3);
    }

    #[test]
    fn builder_capacity_and_len() {
        let mut b = GraphBuilder::with_capacity(4, 8);
        assert!(b.is_empty());
        b.add_edge(0, 3, 1.0);
        assert_eq!(b.len(), 1);
        assert_eq!(b.num_nodes(), 4);
    }

    #[test]
    fn csr_layout_consistent() {
        // adjacency of each node sums to 2m entries overall
        let g = triangle();
        let total: usize = (0..3).map(|u| g.neighbors(u).len()).sum();
        assert_eq!(total, 2 * g.num_edges());
    }
}
