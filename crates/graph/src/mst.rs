//! Minimum spanning tree (Kruskal).
//!
//! The Euclidean MST is the sparsest connected baseline in the experiment
//! suite: it has optimal total weight but unbounded stretch, the opposite
//! trade-off from the paper's topology `𝒩`.

use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::union_find::UnionFind;

/// Kruskal's MST (a minimum spanning *forest* if the input is
/// disconnected). Returns the forest as a graph on the same node set.
pub fn kruskal_mst(g: &Graph) -> Graph {
    let mut edges: Vec<(NodeId, NodeId, f64)> = g.edges().collect();
    edges.sort_unstable_by(|a, b| a.2.partial_cmp(&b.2).expect("finite weights"));
    let mut uf = UnionFind::new(g.num_nodes());
    let mut b = GraphBuilder::with_capacity(g.num_nodes(), g.num_nodes().saturating_sub(1));
    for (u, v, w) in edges {
        if uf.union(u, v) {
            b.add_edge(u, v, w);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::is_connected;

    #[test]
    fn mst_of_square_with_diagonal() {
        // 4-cycle with unit edges plus an expensive diagonal: MST keeps 3
        // unit edges.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(3, 0, 1.0);
        b.add_edge(0, 2, 10.0);
        let mst = kruskal_mst(&b.build());
        assert_eq!(mst.num_edges(), 3);
        assert!((mst.total_weight() - 3.0).abs() < 1e-12);
        assert!(is_connected(&mst));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // symmetric w[u][v]/w[v][u] fills read clearer indexed
    fn mst_weight_is_minimal_vs_bruteforce() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        // Small complete graphs: compare against exhaustive spanning-tree
        // enumeration via Prim-like greedy (which is exact).
        for _ in 0..10 {
            let n = rng.gen_range(3..8usize);
            let mut b = GraphBuilder::new(n);
            let mut w = vec![vec![0.0f64; n]; n];
            for u in 0..n {
                for v in (u + 1)..n {
                    let x = rng.gen_range(0.1..10.0);
                    w[u][v] = x;
                    w[v][u] = x;
                    b.add_edge(u as u32, v as u32, x);
                }
            }
            let g = b.build();
            let mst = kruskal_mst(&g);
            // Prim oracle
            let mut in_tree = vec![false; n];
            in_tree[0] = true;
            let mut total = 0.0;
            for _ in 1..n {
                let mut best = f64::INFINITY;
                let mut bi = 0;
                for u in 0..n {
                    if !in_tree[u] {
                        continue;
                    }
                    for v in 0..n {
                        if !in_tree[v] && w[u][v] < best {
                            best = w[u][v];
                            bi = v;
                        }
                    }
                }
                in_tree[bi] = true;
                total += best;
            }
            assert!((mst.total_weight() - total).abs() < 1e-9);
        }
    }

    #[test]
    fn forest_on_disconnected_input() {
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(3, 4, 2.0);
        b.add_edge(2, 4, 5.0);
        let mst = kruskal_mst(&b.build());
        assert_eq!(mst.num_edges(), 3); // spanning forest
        assert!(!mst.has_edge(2, 4));
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(kruskal_mst(&GraphBuilder::new(0).build()).num_edges(), 0);
        assert_eq!(kruskal_mst(&GraphBuilder::new(1).build()).num_edges(), 0);
    }
}
