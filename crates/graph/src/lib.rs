//! # adhoc-graph
//!
//! Graph substrate for the SPAA'03 reproduction. Node ids are `u32`
//! (perf-book idiom: half the footprint of `usize` indices), graphs are
//! stored in a CSR-like layout built once via [`GraphBuilder`], and the
//! quadratic analysis kernels (all-pairs stretch) are rayon-parallel.
//!
//! Nothing in this crate knows about geometry; edge weights are opaque
//! `f64` costs supplied by the caller (Euclidean length, `|uv|^κ` energy,
//! hop count = 1.0, …).

pub mod bfs;
pub mod dijkstra;
pub mod flow;
pub mod graph;
pub mod mst;
pub mod stretch;
pub mod union_find;

pub use bfs::{bfs_hops, is_connected};
pub use dijkstra::{dijkstra, dijkstra_path, ShortestPaths};
pub use flow::{min_cut_undirected, multi_source_min_cut, FlowNetwork};
pub use graph::{Graph, GraphBuilder, NodeId};
pub use mst::kruskal_mst;
pub use stretch::{pairwise_stretch, sampled_stretch, StretchStats};
pub use union_find::UnionFind;
