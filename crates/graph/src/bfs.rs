//! Breadth-first search utilities: hop distances and connectivity.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Hop distance (unweighted) from `source` to every node; `u32::MAX` marks
/// unreachable nodes.
pub fn bfs_hops(g: &Graph, source: NodeId) -> Vec<u32> {
    let n = g.num_nodes();
    assert!((source as usize) < n, "source {source} out of range");
    let mut hops = vec![u32::MAX; n];
    let mut queue = VecDeque::with_capacity(n.min(1024));
    hops[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let hu = hops[u as usize];
        for a in g.neighbors(u) {
            if hops[a.to as usize] == u32::MAX {
                hops[a.to as usize] = hu + 1;
                queue.push_back(a.to);
            }
        }
    }
    hops
}

/// True iff the graph is connected. The empty graph and singleton are
/// connected by convention.
pub fn is_connected(g: &Graph) -> bool {
    let n = g.num_nodes();
    if n <= 1 {
        return true;
    }
    bfs_hops(g, 0).iter().all(|&h| h != u32::MAX)
}

/// Connected components: returns `(component_id_per_node, component_count)`.
pub fn connected_components(g: &Graph) -> (Vec<u32>, usize) {
    let n = g.num_nodes();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for s in 0..n as NodeId {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = count;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for a in g.neighbors(u) {
                if comp[a.to as usize] == u32::MAX {
                    comp[a.to as usize] = count;
                    queue.push_back(a.to);
                }
            }
        }
        count += 1;
    }
    (comp, count as usize)
}

/// Unweighted diameter (max finite hop distance over all pairs), or `None`
/// if the graph is disconnected or empty.
pub fn hop_diameter(g: &Graph) -> Option<u32> {
    let n = g.num_nodes();
    if n == 0 || !is_connected(g) {
        return None;
    }
    let mut best = 0;
    for s in 0..n as NodeId {
        let h = bfs_hops(g, s);
        best = best.max(*h.iter().max().unwrap());
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    fn path_graph(n: usize) -> Graph {
        let mut b = GraphBuilder::new(n);
        for u in 0..(n - 1) as u32 {
            b.add_edge(u, u + 1, 1.0);
        }
        b.build()
    }

    #[test]
    fn hops_on_path() {
        let g = path_graph(5);
        assert_eq!(bfs_hops(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_hops(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&path_graph(5)));
        assert!(is_connected(&GraphBuilder::new(0).build()));
        assert!(is_connected(&GraphBuilder::new(1).build()));
        assert!(!is_connected(&GraphBuilder::new(2).build()));
    }

    #[test]
    fn components_counts() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 3, 1.0);
        b.add_edge(3, 4, 1.0);
        let g = b.build();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3); // {0,1}, {2,3,4}, {5}
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[2], comp[5]);
    }

    #[test]
    fn diameter_of_path_and_disconnected() {
        assert_eq!(hop_diameter(&path_graph(5)), Some(4));
        assert_eq!(hop_diameter(&GraphBuilder::new(3).build()), None);
        assert_eq!(hop_diameter(&GraphBuilder::new(0).build()), None);
    }

    #[test]
    fn bfs_ignores_weights() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 100.0);
        b.add_edge(1, 2, 100.0);
        b.add_edge(0, 2, 0.001);
        let g = b.build();
        assert_eq!(bfs_hops(&g, 0)[2], 1); // direct edge, weight irrelevant
    }
}
