//! Stretch kernels.
//!
//! The *stretch* of a subgraph `H ⊆ G` under a cost function is
//! `max_{u,v} dist_H(u,v) / dist_G(u,v)`. Instantiated with Euclidean edge
//! weights this is the paper's distance-stretch (§2.3); with `|uv|^κ`
//! weights it is the energy-stretch (§2.2). Theorem 2.2 asserts the
//! energy-stretch of the ΘALG topology `𝒩` is `O(1)`.
//!
//! The all-pairs computation is `n` single-source Dijkstras on each graph,
//! parallelized over sources with rayon (this is the dominant cost of the
//! E2/E3 experiments).

use crate::dijkstra::dijkstra;
use crate::graph::{Graph, NodeId};
use rayon::prelude::*;

/// Aggregate stretch statistics over a set of node pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StretchStats {
    /// Maximum finite stretch observed.
    pub max: f64,
    /// Mean stretch over all evaluated pairs.
    pub avg: f64,
    /// Number of (ordered) pairs evaluated.
    pub pairs: usize,
    /// Pairs connected in the reference graph but NOT in the subgraph.
    /// Non-zero means the subgraph lost connectivity — infinite stretch.
    pub disconnected_pairs: usize,
}

impl StretchStats {
    /// True iff no pair had infinite stretch.
    pub fn connectivity_preserved(&self) -> bool {
        self.disconnected_pairs == 0
    }

    fn merge(self, other: StretchStats) -> StretchStats {
        let pairs = self.pairs + other.pairs;
        StretchStats {
            max: self.max.max(other.max),
            avg: if pairs == 0 {
                0.0
            } else {
                (self.avg * self.pairs as f64 + other.avg * other.pairs as f64) / pairs as f64
            },
            pairs,
            disconnected_pairs: self.disconnected_pairs + other.disconnected_pairs,
        }
    }

    const EMPTY: StretchStats = StretchStats {
        max: 0.0,
        avg: 0.0,
        pairs: 0,
        disconnected_pairs: 0,
    };
}

/// Stretch of `sub` relative to `reference` from one source node.
fn source_stretch(sub: &Graph, reference: &Graph, s: NodeId) -> StretchStats {
    let dr = dijkstra(reference, s);
    let ds = dijkstra(sub, s);
    let mut max = 0.0f64;
    let mut sum = 0.0f64;
    let mut pairs = 0usize;
    let mut disconnected = 0usize;
    for v in 0..reference.num_nodes() as NodeId {
        if v == s {
            continue;
        }
        let ref_d = dr.dist[v as usize];
        if !ref_d.is_finite() {
            continue; // pair not connected even in the reference
        }
        let sub_d = ds.dist[v as usize];
        if !sub_d.is_finite() {
            disconnected += 1;
            continue;
        }
        if ref_d <= 0.0 {
            // coincident nodes: any finite sub-distance of 0 matches; a
            // positive sub-distance is an infinite ratio — count as
            // stretch 1 when both are 0, skip otherwise (measure-zero
            // degenerate input).
            if sub_d <= 0.0 {
                max = max.max(1.0);
                sum += 1.0;
                pairs += 1;
            }
            continue;
        }
        let ratio = sub_d / ref_d;
        max = max.max(ratio);
        sum += ratio;
        pairs += 1;
    }
    StretchStats {
        max,
        avg: if pairs == 0 { 0.0 } else { sum / pairs as f64 },
        pairs,
        disconnected_pairs: disconnected,
    }
}

/// Exact all-pairs stretch of `sub` relative to `reference`
/// (rayon-parallel over sources).
///
/// # Panics
/// Panics if the two graphs have different node counts.
pub fn pairwise_stretch(sub: &Graph, reference: &Graph) -> StretchStats {
    assert_eq!(
        sub.num_nodes(),
        reference.num_nodes(),
        "graphs must share a node set"
    );
    (0..reference.num_nodes() as NodeId)
        .into_par_iter()
        .map(|s| source_stretch(sub, reference, s))
        .reduce(|| StretchStats::EMPTY, StretchStats::merge)
}

/// Stretch estimated from the given subset of source nodes only
/// (each paired against all destinations). Linear in `sources.len()`.
pub fn sampled_stretch(sub: &Graph, reference: &Graph, sources: &[NodeId]) -> StretchStats {
    assert_eq!(
        sub.num_nodes(),
        reference.num_nodes(),
        "graphs must share a node set"
    );
    sources
        .par_iter()
        .map(|&s| source_stretch(sub, reference, s))
        .reduce(|| StretchStats::EMPTY, StretchStats::merge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// Reference: triangle with a unit shortcut 0-2; sub drops the shortcut.
    fn setup() -> (Graph, Graph) {
        let mut reference = GraphBuilder::new(3);
        reference.add_edge(0, 1, 1.0);
        reference.add_edge(1, 2, 1.0);
        reference.add_edge(0, 2, 1.0);
        let mut sub = GraphBuilder::new(3);
        sub.add_edge(0, 1, 1.0);
        sub.add_edge(1, 2, 1.0);
        (sub.build(), reference.build())
    }

    #[test]
    fn identity_subgraph_has_stretch_one() {
        let (_, reference) = setup();
        let st = pairwise_stretch(&reference, &reference);
        assert!((st.max - 1.0).abs() < 1e-12);
        assert!((st.avg - 1.0).abs() < 1e-12);
        assert!(st.connectivity_preserved());
        assert_eq!(st.pairs, 6); // ordered pairs
    }

    #[test]
    fn dropped_shortcut_doubles_stretch() {
        let (sub, reference) = setup();
        let st = pairwise_stretch(&sub, &reference);
        assert!((st.max - 2.0).abs() < 1e-12); // 0->2 now costs 2
        assert!(st.avg > 1.0 && st.avg < 2.0);
        assert!(st.connectivity_preserved());
    }

    #[test]
    fn disconnection_is_reported() {
        let mut reference = GraphBuilder::new(3);
        reference.add_edge(0, 1, 1.0);
        reference.add_edge(1, 2, 1.0);
        let sub = GraphBuilder::new(3); // empty
        let st = pairwise_stretch(&sub.build(), &reference.build());
        assert!(!st.connectivity_preserved());
        assert_eq!(st.pairs, 0);
        assert_eq!(st.disconnected_pairs, 6);
    }

    #[test]
    fn sampled_subset_of_sources() {
        let (sub, reference) = setup();
        let st = sampled_stretch(&sub, &reference, &[0]);
        assert!((st.max - 2.0).abs() < 1e-12);
        assert_eq!(st.pairs, 2); // 0->1 and 0->2
    }

    #[test]
    fn sampled_empty_sources() {
        let (sub, reference) = setup();
        let st = sampled_stretch(&sub, &reference, &[]);
        assert_eq!(st.pairs, 0);
        assert_eq!(st.max, 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_node_sets_panic() {
        let (sub, _) = setup();
        let reference = GraphBuilder::new(5).build();
        pairwise_stretch(&sub, &reference);
    }

    #[test]
    fn stretch_never_below_one_for_subgraphs() {
        // A true subgraph can never beat the reference.
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        for _ in 0..10 {
            let n = rng.gen_range(4..20usize);
            let mut full = GraphBuilder::new(n);
            let mut kept = GraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.5) {
                        let w = rng.gen_range(0.1..3.0);
                        full.add_edge(u, v, w);
                        if rng.gen_bool(0.7) {
                            kept.add_edge(u, v, w);
                        }
                    }
                }
            }
            let st = pairwise_stretch(&kept.build(), &full.build());
            if st.pairs > 0 {
                assert!(st.max >= 1.0 - 1e-12);
                assert!(st.avg >= 1.0 - 1e-12);
            }
        }
    }

    #[test]
    fn merge_weighted_average() {
        let a = StretchStats {
            max: 2.0,
            avg: 2.0,
            pairs: 1,
            disconnected_pairs: 0,
        };
        let b = StretchStats {
            max: 1.0,
            avg: 1.0,
            pairs: 3,
            disconnected_pairs: 2,
        };
        let m = a.merge(b);
        assert_eq!(m.pairs, 4);
        assert_eq!(m.disconnected_pairs, 2);
        assert!((m.avg - 1.25).abs() < 1e-12);
        assert_eq!(m.max, 2.0);
    }
}
