//! Single-source shortest paths (Dijkstra).
//!
//! This is the workhorse of every stretch measurement: energy-stretch and
//! distance-stretch (paper §2.2, §2.3) are ratios of shortest-path costs in
//! the topology `𝒩` versus the full transmission graph `G*`.

use crate::graph::{Graph, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Result of a single-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    pub source: NodeId,
    /// `dist[v]` = cost of the cheapest path source→v (`f64::INFINITY` if
    /// unreachable).
    pub dist: Vec<f64>,
    /// `parent[v]` = predecessor of `v` on one cheapest path
    /// (`u32::MAX` for the source and unreachable nodes).
    pub parent: Vec<NodeId>,
}

impl ShortestPaths {
    /// Is `v` reachable from the source?
    pub fn reachable(&self, v: NodeId) -> bool {
        self.dist[v as usize].is_finite()
    }

    /// Reconstruct the node sequence source→…→`v`, or `None` if
    /// unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.reachable(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while cur != self.source {
            cur = self.parent[cur as usize];
            debug_assert!(cur != u32::MAX, "broken parent chain");
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Number of hops of the reconstructed path to `v`.
    pub fn hops_to(&self, v: NodeId) -> Option<usize> {
        self.path_to(v).map(|p| p.len() - 1)
    }
}

#[derive(PartialEq)]
struct HeapItem {
    dist: f64,
    node: NodeId,
}

impl Eq for HeapItem {}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on dist via reversed comparison; dist is always finite
        // here (we only push finite tentative distances).
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra from `source` over the whole graph.
///
/// # Panics
/// Panics if `source` is out of range.
pub fn dijkstra(g: &Graph, source: NodeId) -> ShortestPaths {
    dijkstra_bounded(g, source, f64::INFINITY)
}

/// Dijkstra from `source`, abandoning nodes farther than `limit`.
///
/// Useful for the local analyses (e.g. checking stretch only over `G*`
/// edges, whose endpoints are within one transmission range).
pub fn dijkstra_bounded(g: &Graph, source: NodeId, limit: f64) -> ShortestPaths {
    let n = g.num_nodes();
    assert!((source as usize) < n, "source {source} out of range");
    let mut dist = vec![f64::INFINITY; n];
    let mut parent = vec![u32::MAX; n];
    let mut heap = BinaryHeap::with_capacity(n.min(1024));
    dist[source as usize] = 0.0;
    heap.push(HeapItem {
        dist: 0.0,
        node: source,
    });
    while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
        if d > dist[u as usize] {
            continue; // stale entry
        }
        for a in g.neighbors(u) {
            let nd = d + a.weight;
            if nd < dist[a.to as usize] && nd <= limit {
                dist[a.to as usize] = nd;
                parent[a.to as usize] = u;
                heap.push(HeapItem {
                    dist: nd,
                    node: a.to,
                });
            }
        }
    }
    ShortestPaths {
        source,
        dist,
        parent,
    }
}

/// Cheapest path between two nodes as `(cost, node sequence)`, or `None`
/// if disconnected.
pub fn dijkstra_path(g: &Graph, source: NodeId, target: NodeId) -> Option<(f64, Vec<NodeId>)> {
    let sp = dijkstra(g, source);
    sp.path_to(target).map(|p| (sp.dist[target as usize], p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;

    /// 0 --1-- 1 --1-- 2      3 (isolated)
    ///  \______5______/
    fn diamond() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(0, 2, 5.0);
        b.build()
    }

    #[test]
    fn shortest_prefers_two_hops() {
        let g = diamond();
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[2], 2.0);
        assert_eq!(sp.path_to(2), Some(vec![0, 1, 2]));
        assert_eq!(sp.hops_to(2), Some(2));
    }

    #[test]
    fn unreachable_is_infinite() {
        let g = diamond();
        let sp = dijkstra(&g, 0);
        assert!(!sp.reachable(3));
        assert_eq!(sp.path_to(3), None);
        assert_eq!(sp.hops_to(3), None);
    }

    #[test]
    fn source_distance_zero() {
        let g = diamond();
        let sp = dijkstra(&g, 1);
        assert_eq!(sp.dist[1], 0.0);
        assert_eq!(sp.path_to(1), Some(vec![1]));
        assert_eq!(sp.hops_to(1), Some(0));
    }

    #[test]
    fn bounded_cuts_off() {
        let g = diamond();
        let sp = dijkstra_bounded(&g, 0, 1.5);
        assert_eq!(sp.dist[1], 1.0);
        assert!(!sp.reachable(2)); // would cost 2.0 > 1.5
    }

    #[test]
    fn path_endpoints() {
        let g = diamond();
        let (cost, path) = dijkstra_path(&g, 2, 0).unwrap();
        assert_eq!(cost, 2.0);
        assert_eq!(*path.first().unwrap(), 2);
        assert_eq!(*path.last().unwrap(), 0);
    }

    #[test]
    #[should_panic]
    fn bad_source_panics() {
        dijkstra(&diamond(), 99);
    }

    #[test]
    fn zero_weight_edges_ok() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 0.0);
        b.add_edge(1, 2, 0.0);
        let g = b.build();
        let sp = dijkstra(&g, 0);
        assert_eq!(sp.dist[2], 0.0);
        assert_eq!(sp.hops_to(2), Some(2));
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // comparing parallel dist arrays by index
    fn matches_brute_force_on_random_graphs() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for trial in 0..20 {
            let n = rng.gen_range(2..30);
            let mut b = GraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen_bool(0.3) {
                        b.add_edge(u, v, rng.gen_range(0.0..10.0));
                    }
                }
            }
            let g = b.build();
            let sp = dijkstra(&g, 0);
            // Bellman-Ford as oracle
            let mut bf = vec![f64::INFINITY; n];
            bf[0] = 0.0;
            for _ in 0..n {
                for (u, v, w) in g.edges() {
                    let (u, v) = (u as usize, v as usize);
                    if bf[u] + w < bf[v] {
                        bf[v] = bf[u] + w;
                    }
                    if bf[v] + w < bf[u] {
                        bf[u] = bf[v] + w;
                    }
                }
            }
            for v in 0..n {
                let (a, b2) = (sp.dist[v], bf[v]);
                assert!(
                    (a.is_infinite() && b2.is_infinite()) || (a - b2).abs() < 1e-9,
                    "trial {trial}: node {v}: dijkstra {a} vs bellman-ford {b2}"
                );
            }
        }
    }

    #[test]
    fn path_cost_matches_dist() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 25;
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(0.2) {
                    b.add_edge(u, v, rng.gen_range(0.1..5.0));
                }
            }
        }
        let g = b.build();
        let sp = dijkstra(&g, 0);
        for v in 0..n as u32 {
            if let Some(path) = sp.path_to(v) {
                let cost: f64 = path
                    .windows(2)
                    .map(|w| g.edge_weight(w[0], w[1]).unwrap())
                    .sum();
                assert!((cost - sp.dist[v as usize]).abs() < 1e-9);
            }
        }
    }
}
