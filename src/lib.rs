//! # adhoc-net
//!
//! A production-quality Rust reproduction of
//!
//! > Lujun Jia, Rajmohan Rajaraman, Christian Scheideler.
//! > *On Local Algorithms for Topology Control and Routing in Ad Hoc
//! > Networks.* SPAA 2003.
//!
//! This facade crate re-exports the whole workspace. The layering mirrors
//! the paper:
//!
//! * [`geom`] — plane geometry, sectors, the honeycomb tiling, spatial
//!   index, synthetic node distributions (substrate).
//! * [`graph`] — CSR graphs, Dijkstra/BFS, MST, stretch kernels
//!   (substrate).
//! * [`proximity`] — the transmission graph `G*` and the classic
//!   baselines: Yao graph, Gabriel graph, RNG, kNN, Euclidean MST.
//! * [`core`] — **the paper's contribution**: the ΘALG two-phase local
//!   topology control algorithm (§2), its 3-round message-passing
//!   formulation, stretch analyses, and the θ-path replacement of
//!   Theorem 2.8.
//! * [`interference`] — the pairwise guard-zone model (§2.4),
//!   interference sets/numbers, the randomized symmetry-breaking MAC
//!   (§3.3), and the honeycomb MAC (§3.4).
//! * [`routing`] — the `(T,γ)`-balancing algorithm (§3.2), the
//!   `(T,γ,I)` interference-aware variant (§3.3), the honeycomb router
//!   (§3.4), and baselines.
//! * [`runtime`] — deterministic message-passing node runtime with fault
//!   injection: ΘALG and `(T,γ)`-balancing replayed as actor protocols
//!   over lossy, delaying, duplicating links, with an optional per-link
//!   reliable-delivery sublayer (sliding window + cumulative ack +
//!   capped-backoff retransmit) under the balancing packet traffic, a
//!   seeded churn/mobility engine (joins, graceful leaves, crashes,
//!   waypoint drift) under which ΘALG re-converges locally, and a
//!   Byzantine adversary subsystem (lying height gossip, blackholes,
//!   equivocation) countered by a local plausibility/probe/attestation
//!   defense that quarantines detected liars.
//! * [`sim`] — OPT-by-construction adversaries, workloads, mobility, and
//!   the experiment runners E1–E22 (`cargo run -p adhoc-sim --bin
//!   report`).
//!
//! ## Quickstart
//!
//! ```
//! use adhoc_net::prelude::*;
//!
//! // 200 uniform nodes in the unit square.
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let points = NodeDistribution::unit_square().sample(200, &mut rng).unwrap();
//! let range = default_max_range(points.len());
//!
//! // The transmission graph G* and the ΘALG topology 𝒩.
//! let gstar = unit_disk_graph(&points, range);
//! let topo = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range).build(&points);
//!
//! // Lemma 2.1: connected, degree ≤ 4π/θ = 12.
//! let report = verify_lemma_2_1(&topo);
//! assert!(report.holds());
//!
//! // Theorem 2.2: O(1) energy-stretch.
//! let stretch = energy_stretch(&topo.spatial, &gstar, 2.0);
//! assert!(stretch.max < 4.0);
//! ```

pub use adhoc_core as core;
pub use adhoc_geom as geom;
pub use adhoc_graph as graph;
pub use adhoc_interference as interference;
pub use adhoc_proximity as proximity;
pub use adhoc_routing as routing;
pub use adhoc_runtime as runtime;
pub use adhoc_sim as sim;

/// Everything needed for typical use, one import away.
pub mod prelude {
    pub use adhoc_core::{
        distance_stretch, energy_stretch, greedy_spanner, prune_spanner, replace_edge,
        theta_path_congestion, verify_lemma_2_1, ThetaAlg, ThetaTopology,
    };
    pub use adhoc_geom::distributions::NodeDistribution;
    pub use adhoc_geom::{default_max_range, HexGrid, Point, SectorPartition};
    pub use adhoc_graph::{
        dijkstra, is_connected, min_cut_undirected, multi_source_min_cut, pairwise_stretch, Graph,
        GraphBuilder,
    };
    pub use adhoc_interference::{
        interference_number, tdma_schedule, ActivationRule, HoneycombMac, InterferenceModel,
        RandomizedMac, SinrModel,
    };
    pub use adhoc_proximity::{
        beta_skeleton, delaunay_graph, euclidean_mst, gabriel_graph, knn_graph,
        relative_neighborhood_graph, restricted_delaunay_graph, unit_disk_graph, yao_graph,
        SpatialGraph,
    };
    pub use adhoc_routing::{
        ActiveEdge, AnycastRouter, BalancingConfig, BalancingRouter, GreedyRouter, HoneycombConfig,
        HoneycombRouter, InterferenceRouter, StaleBalancingRouter, TracedRouter,
    };
    pub use adhoc_runtime::{
        edge_fidelity, run_gossip_balancing, run_gossip_balancing_adversarial,
        run_gossip_balancing_churn, run_gossip_balancing_sharded, run_theta_churn,
        run_theta_protocol, run_theta_protocol_sharded, uniform_workload, AdversaryPlan, Attack,
        ChurnPlan, DefenseConfig, DelayDist, FaultConfig, GossipConfig, MemberState,
        ReliableConfig, Runtime, ThetaTiming,
    };
    pub use adhoc_sim::{build_schedule, run_balancing_on_schedule, ScenarioConfig, Workload};
    pub use rand::SeedableRng;
}
